//! Genetic-algorithm tuner — AutoTVM's `GATuner` baseline.
//!
//! A model-free population search: tournament selection on measured GFLOPS,
//! single-point crossover of knob choices, and per-knob mutation. Useful as
//! a second baseline family (the paper compares against the XGBoost+SA
//! AutoTVM configuration; GA shows where model-free search lands).

use crate::tuner::Tuner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schedule::{Config, ConfigSpace};
use std::collections::HashSet;

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaOptions {
    /// Population size.
    pub population: usize,
    /// Parents kept per generation (elite).
    pub elite: usize,
    /// Per-knob mutation probability.
    pub mutation_prob: f64,
}

impl Default for GaOptions {
    fn default() -> Self {
        GaOptions { population: 64, elite: 16, mutation_prob: 0.1 }
    }
}

/// Genetic-algorithm tuner over one configuration space.
pub struct GaTuner<'s> {
    space: &'s ConfigSpace,
    opts: GaOptions,
    /// Scored population (config, measured GFLOPS).
    scored: Vec<(Config, f64)>,
    visited: HashSet<u64>,
    rng: StdRng,
}

impl<'s> GaTuner<'s> {
    /// Creates a GA tuner.
    ///
    /// # Panics
    ///
    /// Panics if `elite` is 0 or exceeds `population`.
    #[must_use]
    pub fn new(space: &'s ConfigSpace, opts: GaOptions, seed: u64) -> Self {
        assert!(opts.elite > 0 && opts.elite <= opts.population, "invalid elite size");
        GaTuner {
            space,
            opts,
            scored: Vec::new(),
            visited: HashSet::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Tournament-selects a parent index (higher GFLOPS wins).
    fn select_parent(&mut self) -> usize {
        let n = self.scored.len();
        let a = self.rng.gen_range(0..n);
        let b = self.rng.gen_range(0..n);
        if self.scored[a].1 >= self.scored[b].1 {
            a
        } else {
            b
        }
    }

    /// Crossover + mutation producing one child.
    fn breed(&mut self) -> Config {
        let pa = self.select_parent();
        let pb = self.select_parent();
        let k = self.space.num_knobs();
        let cut = self.rng.gen_range(0..=k);
        let mut choices: Vec<usize> =
            (0..k)
                .map(|i| {
                    if i < cut {
                        self.scored[pa].0.choices[i]
                    } else {
                        self.scored[pb].0.choices[i]
                    }
                })
                .collect();
        for (i, c) in choices.iter_mut().enumerate() {
            if self.rng.gen::<f64>() < self.opts.mutation_prob {
                let card = self.space.knobs()[i].cardinality();
                *c = self.rng.gen_range(0..card);
            }
        }
        let index = self.space.index_of(&choices);
        Config { index, choices }
    }
}

impl Tuner for GaTuner<'_> {
    fn next_batch(&mut self, n: usize) -> Vec<Config> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < 200 * n {
            attempts += 1;
            let cfg = if self.scored.len() < self.opts.elite {
                self.space.sample(&mut self.rng)
            } else {
                self.breed()
            };
            if self.visited.insert(cfg.index) {
                out.push(cfg);
            }
        }
        out
    }

    fn update(&mut self, results: &[(Config, f64)]) {
        self.scored.extend(results.iter().cloned());
        // Keep the elite as the breeding pool.
        self.scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        self.scored.truncate(self.opts.elite.max(2));
    }

    fn preferred_batch(&self) -> usize {
        self.opts.population
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::Knob;

    fn toy_space() -> ConfigSpace {
        // Two 4-way splits of 2^12: 455 candidates each, ~207k configs —
        // big enough that six 64-child generations cannot exhaust it.
        ConfigSpace::new("toy", vec![Knob::split("a", 4096, 4), Knob::split("b", 4096, 4)])
    }

    fn truth(c: &Config) -> f64 {
        let a = c.choices[0] as f64;
        let b = c.choices[1] as f64;
        100.0 - 0.01 * ((a - 200.0) * (a - 200.0) + (b - 300.0) * (b - 300.0))
    }

    #[test]
    fn selection_pressure_raises_generation_means() {
        let space = toy_space();
        let mut t = GaTuner::new(&space, GaOptions::default(), 1);
        let mut gen_means = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for _ in 0..6 {
            let batch = t.next_batch(t.preferred_batch());
            let results: Vec<(Config, f64)> = batch
                .into_iter()
                .map(|c| {
                    let y = truth(&c);
                    (c, y)
                })
                .collect();
            let mean: f64 = results.iter().map(|(_, y)| *y).sum::<f64>() / results.len() as f64;
            best = results.iter().map(|(_, y)| *y).fold(best, f64::max);
            gen_means.push(mean);
            t.update(&results);
        }
        assert!(
            gen_means.last().unwrap() > gen_means.first().unwrap(),
            "breeding should raise the population mean: {gen_means:?}"
        );
        assert!(best > 60.0, "GA should approach the peak, got {best}");
    }

    #[test]
    fn never_repeats_configs() {
        let space = toy_space();
        let mut t = GaTuner::new(&space, GaOptions::default(), 2);
        let mut seen = HashSet::new();
        for _ in 0..5 {
            let batch = t.next_batch(32);
            for c in &batch {
                assert!(seen.insert(c.index));
            }
            let results: Vec<(Config, f64)> = batch
                .into_iter()
                .map(|c| {
                    let y = truth(&c);
                    (c, y)
                })
                .collect();
            t.update(&results);
        }
    }

    #[test]
    #[should_panic(expected = "invalid elite")]
    fn zero_elite_panics() {
        let space = toy_space();
        let _ = GaTuner::new(&space, GaOptions { elite: 0, ..GaOptions::default() }, 0);
    }
}

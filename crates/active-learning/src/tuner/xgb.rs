//! The AutoTVM baseline tuner (reference \[18\] in the paper).
//!
//! XGBoost-style cost model + simulated-annealing candidate search +
//! ε-greedy batch selection. The initial measurement set is random in stock
//! AutoTVM; passing a BTED set instead yields the paper's **BTED** variant —
//! that is the entire difference between the two experiment arms.

use crate::evaluator::{Evaluator, GbtEvaluator};
use crate::sa::{simulated_annealing, SaOptions};
use crate::tuner::Tuner;
use gbt::{GbtParams, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schedule::feature::features;
use schedule::{Config, ConfigSpace};
use std::collections::HashSet;

/// AutoTVM's model-based tuner.
pub struct XgbTuner<'s> {
    space: &'s ConfigSpace,
    gbt: GbtParams,
    sa: SaOptions,
    plan_size: usize,
    epsilon: f64,
    /// Initial configurations not yet proposed (random or BTED).
    pending_init: Vec<Config>,
    /// Model-proposed configurations not yet proposed for measurement.
    plan: Vec<Config>,
    measured: Vec<(Config, f64)>,
    visited: HashSet<u64>,
    /// Measurements accumulated since the last model refit.
    dirty: usize,
    rng: StdRng,
    refits: u64,
}

impl<'s> XgbTuner<'s> {
    /// Creates the tuner with a pre-built initial set (`init`) — pass
    /// random samples for stock AutoTVM or a BTED set for the paper's
    /// initialization.
    #[must_use]
    pub fn new(
        space: &'s ConfigSpace,
        init: Vec<Config>,
        gbt: GbtParams,
        sa: SaOptions,
        plan_size: usize,
        epsilon: f64,
        seed: u64,
    ) -> Self {
        XgbTuner {
            space,
            gbt,
            sa,
            plan_size,
            epsilon,
            pending_init: init,
            plan: Vec::new(),
            measured: Vec::new(),
            visited: HashSet::new(),
            dirty: 0,
            rng: StdRng::seed_from_u64(seed),
            refits: 0,
        }
    }

    /// Creates the stock-AutoTVM variant: `init_points` uniform random
    /// initial configurations.
    #[must_use]
    pub fn with_random_init(
        space: &'s ConfigSpace,
        init_points: usize,
        gbt: GbtParams,
        sa: SaOptions,
        plan_size: usize,
        epsilon: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1F3);
        let init = space.sample_distinct(&mut rng, init_points);
        XgbTuner::new(space, init, gbt, sa, plan_size, epsilon, seed)
    }

    /// Refits the cost model on everything measured and rebuilds the plan
    /// via simulated annealing on the model score.
    fn replan(&mut self) {
        let tel = telemetry::global();
        let _span = tel.span("xgb.replan");
        self.refits += 1;
        let valid: Vec<&(Config, f64)> = self.measured.iter().filter(|(_, y)| *y > 0.0).collect();
        if valid.len() < 4 {
            // Not enough signal to train: plan random configs.
            self.plan = (0..self.plan_size)
                .map(|_| self.space.sample(&mut self.rng))
                .filter(|c| !self.visited.contains(&c.index))
                .collect();
            return;
        }
        // Fit on all measurements (failed ones at 0.0 teach the validity
        // cliffs), normalizing scores so SA temperatures are comparable.
        let rows: Vec<Vec<f64>> =
            self.measured.iter().map(|(c, _)| features(self.space, c)).collect();
        let y_max =
            self.measured.iter().map(|&(_, y)| y).fold(f64::NEG_INFINITY, f64::max).max(1e-9);
        let ys: Vec<f64> = self.measured.iter().map(|&(_, y)| y / y_max).collect();
        let x = Matrix::from_rows(&rows);
        let mut model = GbtEvaluator::new(self.gbt);
        {
            let _fit = tel.span("xgb.fit");
            model.fit(&x, &ys, self.refits);
        }
        tel.event(
            "xgb.refit",
            || telemetry::json!({ "refit": self.refits, "rows": rows.len() as u64 }),
        );

        let space = self.space;
        let score = |cands: &[Config]| -> Vec<f64> {
            cands.iter().map(|c| model.predict_row(&features(space, c))).collect()
        };
        self.plan = simulated_annealing(
            self.space,
            score,
            &self.sa,
            self.plan_size,
            &self.visited,
            self.refits.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        self.dirty = 0;
    }
}

impl Tuner for XgbTuner<'_> {
    fn next_batch(&mut self, n: usize) -> Vec<Config> {
        let mut out = Vec::with_capacity(n);
        // Initialization stage.
        while out.len() < n {
            let Some(cfg) = self.pending_init.pop() else { break };
            if self.visited.insert(cfg.index) {
                out.push(cfg);
            }
        }
        // Model-guided stage with ε-greedy random injection.
        while out.len() < n {
            if self.plan.is_empty() || self.dirty > 0 {
                self.replan();
                if self.plan.is_empty() {
                    break;
                }
            }
            let explore = self.rng.gen::<f64>() < self.epsilon;
            let cfg = if explore { self.space.sample(&mut self.rng) } else { self.plan.remove(0) };
            if self.visited.insert(cfg.index) {
                out.push(cfg);
            } else if !explore {
                continue; // plan entry already visited, pull the next one
            }
        }
        out
    }

    fn update(&mut self, results: &[(Config, f64)]) {
        for (c, y) in results {
            self.visited.insert(c.index);
            self.measured.push((c.clone(), *y));
        }
        self.dirty += results.len();
    }

    fn exclude(&mut self, indices: &[u64]) {
        // `visited` doubles as the SA proposer's exclusion set, so
        // quarantined configurations are never planned again.
        self.visited.extend(indices.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::Knob;

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new("toy", vec![Knob::split("a", 4096, 2), Knob::split("b", 4096, 2)])
    }

    fn truth(c: &Config) -> f64 {
        let a = c.choices[0] as f64;
        let b = c.choices[1] as f64;
        100.0 - ((a - 10.0) * (a - 10.0) + (b - 2.0) * (b - 2.0))
    }

    fn small_params() -> (GbtParams, SaOptions) {
        (
            GbtParams { n_rounds: 15, ..GbtParams::default() },
            SaOptions { parallel_size: 16, n_iter: 40, ..SaOptions::default() },
        )
    }

    #[test]
    fn proposes_init_set_first() {
        let space = toy_space();
        let init: Vec<Config> = (0..8).map(|i| space.config(i).unwrap()).collect();
        let (g, s) = small_params();
        let mut t = XgbTuner::new(&space, init, g, s, 8, 0.0, 0);
        let batch = t.next_batch(8);
        let mut got: Vec<u64> = batch.iter().map(|c| c.index).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn model_stage_beats_init_stage() {
        let space = toy_space();
        let (g, s) = small_params();
        let mut t = XgbTuner::with_random_init(&space, 16, g, s, 16, 0.05, 1);
        let mut best_init = f64::NEG_INFINITY;
        let mut best_model = f64::NEG_INFINITY;
        for round in 0..6 {
            let batch = t.next_batch(16);
            if batch.is_empty() {
                break;
            }
            let results: Vec<(Config, f64)> = batch
                .into_iter()
                .map(|c| {
                    let y = truth(&c);
                    (c, y)
                })
                .collect();
            for (_, y) in &results {
                if round == 0 {
                    best_init = best_init.max(*y);
                } else {
                    best_model = best_model.max(*y);
                }
            }
            t.update(&results);
        }
        assert!(
            best_model > best_init,
            "model-guided {best_model} should beat random init {best_init}"
        );
        assert!(best_model > 95.0, "should approach the peak, got {best_model}");
    }

    #[test]
    fn never_returns_duplicates() {
        let space = toy_space();
        let (g, s) = small_params();
        let mut t = XgbTuner::with_random_init(&space, 8, g, s, 8, 0.2, 2);
        let mut seen = HashSet::new();
        for _ in 0..5 {
            let batch = t.next_batch(8);
            let results: Vec<(Config, f64)> = batch
                .into_iter()
                .map(|c| {
                    let y = truth(&c);
                    (c, y)
                })
                .collect();
            for (c, _) in &results {
                assert!(seen.insert(c.index), "duplicate {}", c.index);
            }
            t.update(&results);
        }
    }

    #[test]
    fn survives_all_invalid_measurements() {
        let space = toy_space();
        let (g, s) = small_params();
        let mut t = XgbTuner::with_random_init(&space, 8, g, s, 8, 0.0, 3);
        let batch = t.next_batch(8);
        let results: Vec<(Config, f64)> = batch.into_iter().map(|c| (c, 0.0)).collect();
        t.update(&results);
        assert!(!t.next_batch(8).is_empty());
    }
}

//! The AutoTVM baseline tuner (reference \[18\] in the paper).
//!
//! XGBoost-style cost model + simulated-annealing candidate search +
//! ε-greedy batch selection. The initial measurement set is random in stock
//! AutoTVM; passing a BTED set instead yields the paper's **BTED** variant —
//! that is the entire difference between the two experiment arms.

use crate::evaluator::{Evaluator, GbtEvaluator};
use crate::model_quality::ProposalDiag;
use crate::sa::{simulated_annealing_scored, SaOptions};
use crate::tuner::Tuner;
use gbt::{GbtParams, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schedule::feature::{feature_len, features, features_into};
use schedule::{Config, ConfigSpace};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// AutoTVM's model-based tuner.
pub struct XgbTuner<'s> {
    space: &'s ConfigSpace,
    gbt: GbtParams,
    sa: SaOptions,
    plan_size: usize,
    epsilon: f64,
    /// Initial configurations not yet proposed (random or BTED).
    pending_init: Vec<Config>,
    /// Model-proposed configurations not yet proposed for measurement,
    /// with the model score SA ranked them by (`None` on the
    /// not-enough-signal random plan).
    plan: Vec<(Config, Option<f64>)>,
    measured: Vec<(Config, f64)>,
    visited: BTreeSet<u64>,
    /// Measurements accumulated since the last model refit.
    dirty: usize,
    rng: StdRng,
    refits: u64,
    /// Normalization constant of the last fit — plan scores times this are
    /// GFLOPS predictions.
    y_max: f64,
    /// Flat feature buffer reused by the batched SA scoring closure across
    /// calls and across rounds.
    feat_buf: RefCell<Vec<f64>>,
    capture: bool,
    diags: Vec<ProposalDiag>,
}

impl<'s> XgbTuner<'s> {
    /// Creates the tuner with a pre-built initial set (`init`) — pass
    /// random samples for stock AutoTVM or a BTED set for the paper's
    /// initialization.
    #[must_use]
    pub fn new(
        space: &'s ConfigSpace,
        init: Vec<Config>,
        gbt: GbtParams,
        sa: SaOptions,
        plan_size: usize,
        epsilon: f64,
        seed: u64,
    ) -> Self {
        XgbTuner {
            space,
            gbt,
            sa,
            plan_size,
            epsilon,
            pending_init: init,
            plan: Vec::new(),
            measured: Vec::new(),
            visited: BTreeSet::new(),
            dirty: 0,
            rng: StdRng::seed_from_u64(seed),
            refits: 0,
            y_max: 1.0,
            feat_buf: RefCell::new(Vec::new()),
            capture: false,
            diags: Vec::new(),
        }
    }

    /// Creates the stock-AutoTVM variant: `init_points` uniform random
    /// initial configurations.
    #[must_use]
    pub fn with_random_init(
        space: &'s ConfigSpace,
        init_points: usize,
        gbt: GbtParams,
        sa: SaOptions,
        plan_size: usize,
        epsilon: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1F3);
        let init = space.sample_distinct(&mut rng, init_points);
        XgbTuner::new(space, init, gbt, sa, plan_size, epsilon, seed)
    }

    /// Refits the cost model on the valid measurements and rebuilds the
    /// plan via simulated annealing on the model score.
    fn replan(&mut self) {
        let tel = telemetry::global();
        let _span = tel.span("xgb.replan");
        self.refits += 1;
        let valid: Vec<&(Config, f64)> = self.measured.iter().filter(|(_, y)| *y > 0.0).collect();
        if valid.len() < 4 {
            // Not enough signal to train: plan random configs.
            self.plan = (0..self.plan_size)
                .map(|_| self.space.sample(&mut self.rng))
                .filter(|c| !self.visited.contains(&c.index))
                .map(|c| (c, None))
                .collect();
            return;
        }
        // Fit on the valid measurements only: failed trials report 0.0
        // GFLOPS, and regressing on those zeros drags the surrogate down
        // around every fault — at a 10% fault rate the model starts
        // steering *away* from the optimum. Known-bad configurations are
        // kept out of future plans by `visited`/quarantine, not by
        // poisoned labels. Scores normalize by the best observed value so
        // SA temperatures stay comparable across tasks.
        let rows: Vec<Vec<f64>> = valid.iter().map(|(c, _)| features(self.space, c)).collect();
        let y_max = valid.iter().map(|&&(_, y)| y).fold(f64::NEG_INFINITY, f64::max).max(1e-9);
        let ys: Vec<f64> = valid.iter().map(|&&(_, y)| y / y_max).collect();
        let x = Matrix::from_rows(&rows);
        let mut model = GbtEvaluator::new(self.gbt);
        {
            let _fit = tel.span("xgb.fit");
            model.fit(&x, &ys, self.refits);
        }
        self.y_max = y_max;
        tel.event(
            "xgb.refit",
            || telemetry::json!({ "refit": self.refits, "rows": rows.len() as u64 }),
        );

        let space = self.space;
        let n_feat = feature_len(space);
        let feat_buf = &self.feat_buf;
        let score = |cands: &[Config]| -> Vec<f64> {
            // One batched matrix predict per SA step instead of a model
            // call (and a fresh feature Vec) per candidate. The flat
            // buffer round-trips through the matrix so no allocation
            // survives steady state.
            let mut buf = feat_buf.borrow_mut();
            buf.clear();
            for c in cands {
                features_into(space, c, &mut buf);
            }
            let x = Matrix::new(std::mem::take(&mut *buf), cands.len(), n_feat);
            let preds = model.predict(&x);
            *buf = x.into_data();
            preds
        };
        self.plan = simulated_annealing_scored(
            self.space,
            score,
            &self.sa,
            self.plan_size,
            &self.visited,
            self.refits.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
        .into_iter()
        .map(|(c, s)| (c, Some(s)))
        .collect();
        self.dirty = 0;
    }
}

impl Tuner for XgbTuner<'_> {
    fn next_batch(&mut self, n: usize) -> Vec<Config> {
        let mut out = Vec::with_capacity(n);
        self.diags.clear();
        // Initialization stage.
        while out.len() < n {
            let Some(cfg) = self.pending_init.pop() else { break };
            if self.visited.insert(cfg.index) {
                if self.capture {
                    self.diags.push(ProposalDiag::blind(cfg.index));
                }
                out.push(cfg);
            }
        }
        // Model-guided stage with ε-greedy random injection.
        while out.len() < n {
            if self.plan.is_empty() || self.dirty > 0 {
                self.replan();
                if self.plan.is_empty() {
                    break;
                }
            }
            let explore = self.rng.gen::<f64>() < self.epsilon;
            let (cfg, score) = if explore {
                (self.space.sample(&mut self.rng), None)
            } else {
                self.plan.remove(0)
            };
            if self.visited.insert(cfg.index) {
                if self.capture {
                    // A plan entry's SA score IS the fitted model's
                    // normalized prediction for it, so de-normalizing gives
                    // the GFLOPS forecast without another model call.
                    self.diags.push(match score {
                        Some(s) => ProposalDiag {
                            config_index: cfg.index,
                            predicted_mean: Some(s * self.y_max),
                            predicted_std: None,
                            acquisition: Some(s),
                        },
                        None => ProposalDiag::blind(cfg.index),
                    });
                }
                out.push(cfg);
            } else if !explore {
                continue; // plan entry already visited, pull the next one
            }
        }
        out
    }

    fn update(&mut self, results: &[(Config, f64)]) {
        for (c, y) in results {
            self.visited.insert(c.index);
            self.measured.push((c.clone(), *y));
        }
        self.dirty += results.len();
    }

    fn exclude(&mut self, indices: &[u64]) {
        // `visited` doubles as the SA proposer's exclusion set, so
        // quarantined configurations are never planned again.
        self.visited.extend(indices.iter().copied());
    }

    fn set_capture(&mut self, enabled: bool) {
        self.capture = enabled;
    }

    fn take_diagnostics(&mut self) -> Vec<ProposalDiag> {
        std::mem::take(&mut self.diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::Knob;

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new("toy", vec![Knob::split("a", 4096, 2), Knob::split("b", 4096, 2)])
    }

    fn truth(c: &Config) -> f64 {
        let a = c.choices[0] as f64;
        let b = c.choices[1] as f64;
        100.0 - ((a - 10.0) * (a - 10.0) + (b - 2.0) * (b - 2.0))
    }

    fn small_params() -> (GbtParams, SaOptions) {
        (
            GbtParams { n_rounds: 15, ..GbtParams::default() },
            SaOptions { parallel_size: 16, n_iter: 40, ..SaOptions::default() },
        )
    }

    #[test]
    fn proposes_init_set_first() {
        let space = toy_space();
        let init: Vec<Config> = (0..8).map(|i| space.config(i).unwrap()).collect();
        let (g, s) = small_params();
        let mut t = XgbTuner::new(&space, init, g, s, 8, 0.0, 0);
        let batch = t.next_batch(8);
        let mut got: Vec<u64> = batch.iter().map(|c| c.index).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn model_stage_beats_init_stage() {
        let space = toy_space();
        let (g, s) = small_params();
        let mut t = XgbTuner::with_random_init(&space, 16, g, s, 16, 0.05, 1);
        let mut best_init = f64::NEG_INFINITY;
        let mut best_model = f64::NEG_INFINITY;
        for round in 0..6 {
            let batch = t.next_batch(16);
            if batch.is_empty() {
                break;
            }
            let results: Vec<(Config, f64)> = batch
                .into_iter()
                .map(|c| {
                    let y = truth(&c);
                    (c, y)
                })
                .collect();
            for (_, y) in &results {
                if round == 0 {
                    best_init = best_init.max(*y);
                } else {
                    best_model = best_model.max(*y);
                }
            }
            t.update(&results);
        }
        assert!(
            best_model > best_init,
            "model-guided {best_model} should beat random init {best_init}"
        );
        assert!(best_model > 95.0, "should approach the peak, got {best_model}");
    }

    #[test]
    fn never_returns_duplicates() {
        let space = toy_space();
        let (g, s) = small_params();
        let mut t = XgbTuner::with_random_init(&space, 8, g, s, 8, 0.2, 2);
        let mut seen = BTreeSet::new();
        for _ in 0..5 {
            let batch = t.next_batch(8);
            let results: Vec<(Config, f64)> = batch
                .into_iter()
                .map(|c| {
                    let y = truth(&c);
                    (c, y)
                })
                .collect();
            for (c, _) in &results {
                assert!(seen.insert(c.index), "duplicate {}", c.index);
            }
            t.update(&results);
        }
    }

    #[test]
    fn survives_all_invalid_measurements() {
        let space = toy_space();
        let (g, s) = small_params();
        let mut t = XgbTuner::with_random_init(&space, 8, g, s, 8, 0.0, 3);
        let batch = t.next_batch(8);
        let results: Vec<(Config, f64)> = batch.into_iter().map(|c| (c, 0.0)).collect();
        t.update(&results);
        assert!(!t.next_batch(8).is_empty());
    }

    #[test]
    fn capture_never_changes_proposals_and_aligns_diagnostics() {
        let space = toy_space();
        let (g, s) = small_params();
        let mut plain = XgbTuner::with_random_init(&space, 8, g, s, 8, 0.1, 4);
        let mut captured = XgbTuner::with_random_init(&space, 8, g, s, 8, 0.1, 4);
        captured.set_capture(true);
        let mut saw_model_opinion = false;
        for _ in 0..5 {
            let a = plain.next_batch(8);
            let b = captured.next_batch(8);
            assert_eq!(
                a.iter().map(|c| c.index).collect::<Vec<_>>(),
                b.iter().map(|c| c.index).collect::<Vec<_>>(),
                "capture must not perturb the proposal stream"
            );
            assert!(plain.take_diagnostics().is_empty(), "disabled capture stays empty");
            let diags = captured.take_diagnostics();
            assert_eq!(diags.len(), b.len(), "one diagnostic per proposal");
            for (cfg, d) in b.iter().zip(&diags) {
                assert_eq!(cfg.index, d.config_index);
                if let Some(m) = d.predicted_mean {
                    assert!(m.is_finite());
                    saw_model_opinion = true;
                }
            }
            if a.is_empty() {
                break;
            }
            let results: Vec<(Config, f64)> = a
                .into_iter()
                .map(|c| {
                    let y = truth(&c);
                    (c, y)
                })
                .collect();
            plain.update(&results);
            captured.update(&results);
        }
        assert!(saw_model_opinion, "model-stage proposals must carry predictions");
    }

    #[test]
    fn ten_percent_faults_do_not_poison_the_model() {
        // Satellite regression: 0-GFLOPS failures must be excluded from the
        // surrogate's training labels. With them regressed as real zeros the
        // model learns craters around every fault and steers away from the
        // peak.
        let space = toy_space();
        let (g, s) = small_params();
        let mut t = XgbTuner::with_random_init(&space, 16, g, s, 16, 0.0, 5);
        let mut best_model = f64::NEG_INFINITY;
        let mut trial = 0usize;
        for round in 0..6 {
            let batch = t.next_batch(16);
            if batch.is_empty() {
                break;
            }
            let results: Vec<(Config, f64)> = batch
                .into_iter()
                .map(|c| {
                    // Every 10th measurement fails, independent of quality —
                    // the fault pattern also hits configs near the optimum.
                    trial += 1;
                    let y = if trial.is_multiple_of(10) { 0.0 } else { truth(&c) };
                    (c, y)
                })
                .collect();
            if round > 0 {
                for (_, y) in &results {
                    best_model = best_model.max(*y);
                }
            }
            t.update(&results);
        }
        assert!(
            best_model > 95.0,
            "model must still converge near the peak under 10% faults, got {best_model}"
        );
    }
}

//! Grid search — AutoTVM's `GridSearchTuner`: exhaustive index sweep.
//!
//! Only viable on small spaces, but it provides the exact optimum for
//! validating the other strategies on toy problems.

use crate::tuner::Tuner;
use schedule::{Config, ConfigSpace};

/// Sequential exhaustive sweep over the configuration space.
pub struct GridTuner<'s> {
    space: &'s ConfigSpace,
    next: u64,
}

impl<'s> GridTuner<'s> {
    /// Creates a grid tuner starting at index 0.
    #[must_use]
    pub fn new(space: &'s ConfigSpace) -> Self {
        GridTuner { space, next: 0 }
    }

    /// Remaining configurations.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.space.len() - self.next
    }
}

impl Tuner for GridTuner<'_> {
    fn next_batch(&mut self, n: usize) -> Vec<Config> {
        let take = (n as u64).min(self.remaining());
        let out = (self.next..self.next + take)
            // aal-lint: allow(unwrap, reason = "indices are drawn from 0..space.len()")
            .map(|i| self.space.config(i).expect("index within space"))
            .collect();
        self.next += take;
        out
    }

    fn update(&mut self, _results: &[(Config, f64)]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::Knob;

    #[test]
    fn sweeps_the_space_exactly_once() {
        let space = ConfigSpace::new(
            "g",
            vec![Knob::choice("a", vec![0, 1, 2]), Knob::choice("b", vec![0, 1])],
        );
        let mut t = GridTuner::new(&space);
        let mut all = Vec::new();
        loop {
            let batch = t.next_batch(4);
            if batch.is_empty() {
                break;
            }
            all.extend(batch.into_iter().map(|c| c.index));
        }
        assert_eq!(all, (0..6).collect::<Vec<u64>>());
        assert_eq!(t.remaining(), 0);
        assert!(t.next_batch(4).is_empty());
    }
}

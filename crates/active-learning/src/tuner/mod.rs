//! Tuning strategies behind a common interface.
//!
//! Every strategy implements [`Tuner`]: propose a batch, receive measured
//! results, repeat. The shared measurement loop in
//! [`crate::task_tuning::tune_task`] owns the budget, early stopping and
//! record keeping, so strategies stay pure.

mod ga;
mod grid;
mod random;
mod xgb;

pub use ga::{GaOptions, GaTuner};
pub use grid::GridTuner;
pub use random::RandomTuner;
pub use xgb::XgbTuner;

use crate::model_quality::ProposalDiag;
use schedule::Config;

/// A batch-oriented tuning strategy.
pub trait Tuner {
    /// Proposes up to `n` configurations to measure next. May return fewer
    /// (or none, which ends the run) when the strategy is exhausted.
    fn next_batch(&mut self, n: usize) -> Vec<Config>;

    /// Feeds back measured `(configuration, GFLOPS)` pairs; failed launches
    /// report 0.0 GFLOPS.
    fn update(&mut self, results: &[(Config, f64)]);

    /// The batch size this strategy prefers (the loop may clamp it to the
    /// remaining budget).
    fn preferred_batch(&self) -> usize {
        64
    }

    /// Marks configuration indices as off-limits for future proposals —
    /// the measurement layer's crash quarantine feeds known-bad configs
    /// here so they are never re-proposed. Strategies without an
    /// exclusion mechanism may ignore it (they will just re-measure a
    /// zero-GFLOPS penalty).
    fn exclude(&mut self, _indices: &[u64]) {}

    /// Enables (or disables) model-introspection capture. When enabled, the
    /// strategy records a [`ProposalDiag`] per proposal in `next_batch`,
    /// retrievable via [`Tuner::take_diagnostics`]. Capture must be pure:
    /// it may read fitted models but must not touch RNG streams or change
    /// which configurations are proposed. Model-free strategies ignore it.
    fn set_capture(&mut self, _enabled: bool) {}

    /// Drains the diagnostics recorded for the *most recent* `next_batch`
    /// call, positionally aligned with its returned configurations. Empty
    /// when capture is disabled or the strategy is model-free.
    fn take_diagnostics(&mut self) -> Vec<ProposalDiag> {
        Vec::new()
    }
}

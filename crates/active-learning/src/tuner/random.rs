//! Uniform random search — the sanity baseline.

use crate::tuner::Tuner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schedule::{Config, ConfigSpace};
use std::collections::HashSet;

/// Samples unvisited configurations uniformly at random.
pub struct RandomTuner<'s> {
    space: &'s ConfigSpace,
    visited: HashSet<u64>,
    rng: StdRng,
}

impl<'s> RandomTuner<'s> {
    /// Creates a random tuner over `space`.
    #[must_use]
    pub fn new(space: &'s ConfigSpace, seed: u64) -> Self {
        RandomTuner { space, visited: HashSet::new(), rng: StdRng::seed_from_u64(seed) }
    }
}

impl Tuner for RandomTuner<'_> {
    fn next_batch(&mut self, n: usize) -> Vec<Config> {
        let mut out = Vec::with_capacity(n);
        let space_len = self.space.len();
        let mut attempts = 0u64;
        while out.len() < n && (self.visited.len() as u64) < space_len {
            attempts += 1;
            if attempts > 100 * n as u64 + 1000 {
                break; // space nearly exhausted
            }
            let idx = self.rng.gen_range(0..space_len);
            if self.visited.insert(idx) {
                // aal-lint: allow(unwrap, reason = "sampled index is drawn from 0..space.len()")
                out.push(self.space.config(idx).expect("sampled index in range"));
            }
        }
        out
    }

    fn update(&mut self, _results: &[(Config, f64)]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::Knob;

    #[test]
    fn batches_are_distinct_across_calls() {
        let space = ConfigSpace::new("t", vec![Knob::split("a", 4096, 3)]);
        let mut t = RandomTuner::new(&space, 0);
        let a = t.next_batch(20);
        let b = t.next_batch(20);
        let mut all: Vec<u64> = a.iter().chain(&b).map(|c| c.index).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn exhausts_small_spaces() {
        let space = ConfigSpace::new("t", vec![Knob::choice("a", vec![0, 1, 2, 3])]);
        let mut t = RandomTuner::new(&space, 1);
        let a = t.next_batch(10);
        assert_eq!(a.len(), 4);
        assert!(t.next_batch(10).is_empty());
    }
}

//! Node-wise tuning: the shared measurement loop over any [`Tuner`].

use crate::bao::BaoTuner;
use crate::bted::bted;
use crate::options::TuneOptions;
use crate::records::{TrialRecord, TuningLog};
use crate::tuner::{RandomTuner, Tuner, XgbTuner};
use dnn_graph::task::TuningTask;
use gpu_sim::Measurer;
use schedule::template::space_for_task;
use schedule::{Config, ConfigSpace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The experiment arms of Section V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Uniform random search (sanity baseline, not in the paper's table).
    Random,
    /// Stock AutoTVM: random init + XGBoost cost model + SA search.
    AutoTvm,
    /// AutoTVM with the BTED initial set (the paper's "BTED" arm).
    Bted,
    /// BTED initialization + BAO iterative optimization (the paper's
    /// "BTED + BAO" arm — the full advanced active-learning framework).
    BtedBao,
}

impl Method {
    /// All methods compared in the paper's Table I, in column order.
    pub const PAPER_ARMS: [Method; 3] = [Method::AutoTvm, Method::Bted, Method::BtedBao];

    /// Short label used in logs and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Method::Random => "random",
            Method::AutoTvm => "autotvm",
            Method::Bted => "bted",
            Method::BtedBao => "bted+bao",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Outcome of tuning one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTuneResult {
    /// Task name.
    pub task_name: String,
    /// Method used.
    pub method: Method,
    /// Best configuration found (`None` if every measurement failed).
    pub best_config: Option<Config>,
    /// Its measured GFLOPS.
    pub best_gflops: f64,
    /// Number of configurations measured (Fig. 5(a)'s y-axis).
    pub num_measured: usize,
    /// Full per-trial log.
    pub log: TuningLog,
}

/// Builds the initial configuration set for `method`.
fn initial_set(space: &ConfigSpace, method: Method, opts: &TuneOptions) -> Vec<Config> {
    use rand::SeedableRng;
    let tel = telemetry::global();
    let _span = tel.span("init_select");
    match method {
        Method::Bted | Method::BtedBao => {
            let bopts = crate::bted::BtedOptions { num_selected: opts.init_points, ..opts.bted };
            bted(space, &bopts, opts.seed ^ 0xB7ED)
        }
        Method::AutoTvm => {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(opts.seed ^ 0xA070);
            space.sample_distinct(&mut rng, opts.init_points)
        }
        Method::Random => Vec::new(),
    }
}

/// Tunes one task with the given method and options.
///
/// Runs the shared measurement loop: propose → measure → update, stopping
/// at the `n_trial` budget or after `early_stopping` measurements without
/// improvement (the paper uses 400).
#[must_use]
pub fn tune_task<M: Measurer>(
    task: &TuningTask,
    measurer: &M,
    method: Method,
    opts: &TuneOptions,
) -> TaskTuneResult {
    let tel = telemetry::global();
    let _span = tel.span("tune_task");
    tel.event(telemetry::events::TUNE_START_EVENT, || {
        telemetry::json!({
            "task": task.name.clone(),
            "method": method.label(),
            "seed": opts.seed,
            "n_trial": opts.n_trial as u64,
        })
    });
    let space = space_for_task(task);
    let init = initial_set(&space, method, opts);
    tel.event(
        "init_select.done",
        || telemetry::json!({ "method": method.label(), "init_size": init.len() as u64 }),
    );
    let mut tuner: Box<dyn Tuner> = match method {
        Method::Random => Box::new(RandomTuner::new(&space, opts.seed)),
        Method::AutoTvm | Method::Bted => Box::new(XgbTuner::new(
            &space,
            init,
            opts.gbt,
            opts.sa,
            opts.plan_size,
            opts.epsilon,
            opts.seed,
        )),
        Method::BtedBao => Box::new(BaoTuner::new(&space, init, opts.bao, opts.bao_gbt, opts.seed)),
    };
    drive_loop(task, &space, tuner.as_mut(), measurer, method, opts)
}

/// The measurement loop, shared by every method (and reusable with a custom
/// [`Tuner`] implementation).
pub fn drive_loop<M: Measurer>(
    task: &TuningTask,
    space: &ConfigSpace,
    tuner: &mut dyn Tuner,
    measurer: &M,
    method: Method,
    opts: &TuneOptions,
) -> TaskTuneResult {
    let tel = telemetry::global();
    let _span = tel.span("drive_loop");
    let mut log = TuningLog::new(task.name.clone(), method.label());
    let mut best: Option<(Config, f64)> = None;
    let mut since_best = 0usize;
    let mut measured = 0usize;

    while measured < opts.n_trial && since_best < opts.early_stopping {
        let want = tuner.preferred_batch().min(opts.batch_size).min(opts.n_trial - measured).max(1);
        let batch = tuner.next_batch(want);
        if batch.is_empty() {
            break;
        }
        let mut results = Vec::with_capacity(batch.len());
        for cfg in batch {
            let r = measurer.measure(task, space, &cfg);
            let improved = best.as_ref().is_none_or(|(_, g)| r.gflops > *g);
            if improved && r.gflops > 0.0 {
                best = Some((cfg.clone(), r.gflops));
                since_best = 0;
            } else {
                since_best += 1;
            }
            let best_now = best.as_ref().map_or(0.0, |(_, g)| *g);
            tel.event(telemetry::events::TRIAL_EVENT, || {
                telemetry::json!({
                    "trial": measured as u64,
                    "config_index": cfg.index,
                    "gflops": r.gflops,
                    "best_gflops": best_now,
                    "improved": improved && r.gflops > 0.0,
                })
            });
            tel.observe("trial.gflops", r.gflops);
            log.records.push(TrialRecord {
                trial: measured,
                config_index: cfg.index,
                gflops: r.gflops,
                latency_s: r.latency_s,
                best_gflops: best_now,
            });
            measured += 1;
            results.push((cfg, r.gflops));
        }
        {
            let _update = tel.span("tuner.update");
            tuner.update(&results);
        }
    }

    let (best_config, best_gflops) = match best {
        Some((c, g)) => (Some(c), g),
        None => (None, 0.0),
    };
    TaskTuneResult {
        task_name: task.name.clone(),
        method,
        best_config,
        best_gflops,
        num_measured: measured,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{models, task::extract_tasks};
    use gpu_sim::{GpuDevice, SimMeasurer};

    fn measurer() -> SimMeasurer {
        SimMeasurer::new(GpuDevice::gtx_1080_ti())
    }

    fn task(idx: usize) -> TuningTask {
        extract_tasks(&models::mobilenet_v1(1)).remove(idx)
    }

    #[test]
    fn all_methods_produce_a_valid_best() {
        let t = task(0);
        let m = measurer();
        let opts = TuneOptions::smoke();
        for method in [Method::Random, Method::AutoTvm, Method::Bted, Method::BtedBao] {
            let r = tune_task(&t, &m, method, &opts);
            assert!(r.best_gflops > 0.0, "{method} found nothing");
            assert!(r.best_config.is_some());
            assert!(r.num_measured <= opts.n_trial);
            assert_eq!(r.log.num_measured(), r.num_measured);
        }
    }

    #[test]
    fn convergence_curve_is_monotone() {
        let t = task(1);
        let r = tune_task(&t, &measurer(), Method::BtedBao, &TuneOptions::smoke());
        let curve = r.log.convergence_curve();
        for w in curve.windows(2) {
            assert!(w[1] >= w[0], "best-so-far must be monotone");
        }
    }

    #[test]
    fn early_stopping_caps_measurements() {
        let t = task(0);
        let opts = TuneOptions { n_trial: 10_000, early_stopping: 24, ..TuneOptions::smoke() };
        let r = tune_task(&t, &measurer(), Method::Random, &opts);
        assert!(r.num_measured < 10_000, "early stopping must trigger");
    }

    #[test]
    fn deterministic_given_seed() {
        let t = task(2);
        let m = measurer();
        let opts = TuneOptions::smoke();
        let a = tune_task(&t, &m, Method::BtedBao, &opts);
        let b = tune_task(&t, &m, Method::BtedBao, &opts);
        assert_eq!(a.best_gflops, b.best_gflops);
        assert_eq!(a.log, b.log);
    }

    #[test]
    fn model_guided_methods_beat_random_on_average() {
        let t = task(3);
        let m = measurer();
        let mut rand_best = 0.0;
        let mut bao_best = 0.0;
        for seed in 0..3 {
            let opts = TuneOptions { seed, ..TuneOptions::smoke() };
            rand_best += tune_task(&t, &m, Method::Random, &opts).best_gflops;
            bao_best += tune_task(&t, &m, Method::BtedBao, &opts).best_gflops;
        }
        assert!(
            bao_best > rand_best * 0.95,
            "bted+bao {bao_best} should not lose badly to random {rand_best}"
        );
    }
}

//! Node-wise tuning: the shared measurement loop over any [`Tuner`].

use crate::bao::BaoTuner;
use crate::bted::bted;
use crate::model_quality::{ModelPredRecord, ProposalDiag};
use crate::options::TuneOptions;
use crate::records::{TrialRecord, TuningLog};
use crate::tuner::{RandomTuner, Tuner, XgbTuner};
use dnn_graph::task::TuningTask;
use gpu_sim::Measurer;
use schedule::template::space_for_task;
use schedule::{Config, ConfigSpace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The experiment arms of Section V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Uniform random search (sanity baseline, not in the paper's table).
    Random,
    /// Stock AutoTVM: random init + XGBoost cost model + SA search.
    AutoTvm,
    /// AutoTVM with the BTED initial set (the paper's "BTED" arm).
    Bted,
    /// BTED initialization + BAO iterative optimization (the paper's
    /// "BTED + BAO" arm — the full advanced active-learning framework).
    BtedBao,
}

impl Method {
    /// All methods compared in the paper's Table I, in column order.
    pub const PAPER_ARMS: [Method; 3] = [Method::AutoTvm, Method::Bted, Method::BtedBao];

    /// Short label used in logs and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Method::Random => "random",
            Method::AutoTvm => "autotvm",
            Method::Bted => "bted",
            Method::BtedBao => "bted+bao",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Outcome of tuning one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTuneResult {
    /// Task name.
    pub task_name: String,
    /// Method used.
    pub method: Method,
    /// Best configuration found (`None` if every measurement failed).
    pub best_config: Option<Config>,
    /// Its measured GFLOPS.
    pub best_gflops: f64,
    /// Number of configurations measured (Fig. 5(a)'s y-axis).
    pub num_measured: usize,
    /// Full per-trial log.
    pub log: TuningLog,
    /// Diagnostic when the loop aborted early (fail-rate cap tripped)
    /// instead of exhausting its budget; `None` for a clean run.
    pub aborted: Option<String>,
}

/// Optional extension points for the measurement loop.
///
/// `tune_task` uses the defaults; the crash-safe CLI path threads a
/// per-trial sink (append-to-log-before-consume) and a recovered log to
/// replay through [`tune_task_with`].
#[derive(Default)]
pub struct TuneHooks<'a> {
    /// Called after every *live* (non-replayed) trial, before the result
    /// is fed to the tuner — the crash-safety contract is that a trial
    /// reaches durable storage before anything consumes it.
    pub on_trial: Option<&'a mut dyn FnMut(&TrialRecord)>,
    /// Previously recorded trials to replay through the deterministic
    /// loop before measuring anything. Replay feeds each recorded result
    /// to the tuner without re-measuring, reconstructing the exact loop
    /// state (step counters, model state, BAO radius, RNG cursors) the
    /// recorded run had after its last durable trial.
    pub replay: Option<&'a [TrialRecord]>,
    /// Called once per trial — replayed *and* live — with the surrogate's
    /// opinion of that proposal, when `opts.capture_model` is on. Replayed
    /// trials recompute their diagnostics deterministically, so a resumed
    /// run rebuilds the same `model_quality.jsonl` an uninterrupted run
    /// writes. Never called when capture is off.
    pub on_model: Option<&'a mut dyn FnMut(&ModelPredRecord)>,
    /// Configurations to measure first, ahead of the method's own initial
    /// set (tuning-database warm start or cross-task transfer). Prepended
    /// with dedup-by-index; the combined set is truncated to
    /// `opts.init_points` so the trial budget is unchanged. Ignored by
    /// [`Method::Random`], which takes no initial set. Resume determinism
    /// is the caller's contract: a resumed run must pass the same slice
    /// the original run used (persist it, don't re-derive it).
    pub warm_start: Option<&'a [Config]>,
}

/// Builds the initial configuration set for `method`.
fn initial_set(space: &ConfigSpace, method: Method, opts: &TuneOptions) -> Vec<Config> {
    use rand::SeedableRng;
    let tel = telemetry::global();
    let _span = tel.span("init_select");
    match method {
        Method::Bted | Method::BtedBao => {
            let bopts = crate::bted::BtedOptions { num_selected: opts.init_points, ..opts.bted };
            bted(space, &bopts, opts.seed ^ 0xB7ED)
        }
        Method::AutoTvm => {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(opts.seed ^ 0xA070);
            space.sample_distinct(&mut rng, opts.init_points)
        }
        Method::Random => Vec::new(),
    }
}

/// Tunes one task with the given method and options.
///
/// Runs the shared measurement loop: propose → measure → update, stopping
/// at the `n_trial` budget or after `early_stopping` measurements without
/// improvement (the paper uses 400).
#[must_use]
pub fn tune_task<M: Measurer>(
    task: &TuningTask,
    measurer: &M,
    method: Method,
    opts: &TuneOptions,
) -> TaskTuneResult {
    tune_task_with(task, measurer, method, opts, TuneHooks::default())
}

/// [`tune_task`] with explicit [`TuneHooks`] — the crash-safe resume
/// entry point: pass the recovered trial records as `hooks.replay` and a
/// durable-append sink as `hooks.on_trial`.
#[must_use]
pub fn tune_task_with<M: Measurer>(
    task: &TuningTask,
    measurer: &M,
    method: Method,
    opts: &TuneOptions,
    hooks: TuneHooks<'_>,
) -> TaskTuneResult {
    let tel = telemetry::global();
    let _span = tel.span("tune_task");
    // Live-only: lets heartbeats and `aaltune top` name the task currently
    // tuning. Never reaches the trace or the trial log.
    tel.set_label("task.current", &task.name);
    tel.event(telemetry::events::TUNE_START_EVENT, || {
        telemetry::json!({
            "task": task.name.clone(),
            "method": method.label(),
            "seed": opts.seed,
            "n_trial": opts.n_trial as u64,
        })
    });
    let space = space_for_task(task);
    let mut init = initial_set(&space, method, opts);
    let mut warm_used = 0usize;
    if let Some(warm) = hooks.warm_start.filter(|w| !w.is_empty()) {
        // `init` is a pending stack (tuners pop from the end), so build the
        // merged set in measured order — warm first, then the method's own
        // picks in the order they would have been measured — and reverse.
        let mut seen = std::collections::HashSet::new();
        let mut merged = Vec::with_capacity(opts.init_points.max(1));
        for cfg in warm.iter().chain(init.iter().rev()) {
            if merged.len() >= opts.init_points.max(1) {
                break;
            }
            if seen.insert(cfg.index) {
                merged.push(cfg.clone());
            }
        }
        warm_used = merged.iter().filter(|c| warm.iter().any(|w| w.index == c.index)).count();
        merged.reverse();
        init = merged;
    }
    tel.event("init_select.done", || {
        telemetry::json!({
            "method": method.label(),
            "init_size": init.len() as u64,
            "warm_start": warm_used as u64,
        })
    });
    let mut tuner: Box<dyn Tuner> = match method {
        Method::Random => Box::new(RandomTuner::new(&space, opts.seed)),
        Method::AutoTvm | Method::Bted => Box::new(XgbTuner::new(
            &space,
            init,
            opts.gbt,
            opts.sa,
            opts.plan_size,
            opts.epsilon,
            opts.seed,
        )),
        Method::BtedBao => Box::new(BaoTuner::new(&space, init, opts.bao, opts.bao_gbt, opts.seed)),
    };
    drive_loop(task, &space, tuner.as_mut(), measurer, method, opts, hooks)
}

/// The measurement loop, shared by every method (and reusable with a custom
/// [`Tuner`] implementation).
#[allow(clippy::too_many_lines)]
pub fn drive_loop<M: Measurer>(
    task: &TuningTask,
    space: &ConfigSpace,
    tuner: &mut dyn Tuner,
    measurer: &M,
    method: Method,
    opts: &TuneOptions,
    mut hooks: TuneHooks<'_>,
) -> TaskTuneResult {
    let tel = telemetry::global();
    let _span = tel.span("drive_loop");
    let mut log = TuningLog::new(task.name.clone(), method.label());
    let mut best: Option<(Config, f64)> = None;
    let mut since_best = 0usize;
    let mut measured = 0usize;
    let mut failed = 0usize;
    let mut aborted: Option<String> = None;

    // Model-introspection capture. Pure reads of the fitted model: turning
    // it on must not perturb proposals, RNG streams, or trial-log bytes.
    let capture = opts.capture_model_or_default();
    if capture {
        tuner.set_capture(true);
    }
    let mut round = 0usize;
    // Cumulative (predicted, measured) pairs over successful trials with a
    // model opinion, for the live rank-correlation / calibration gauges.
    let mut cap_pred: Vec<f64> = Vec::new();
    let mut cap_meas: Vec<f64> = Vec::new();
    let mut cap_z_within = 0usize;
    let mut cap_z_total = 0usize;

    let mut replay: &[TrialRecord] = hooks.replay.unwrap_or(&[]);
    if !replay.is_empty() {
        tel.count("tune.resume", 1);
        let replayed = replay.len() as u64;
        tel.event(
            telemetry::events::TUNE_RESUME_EVENT,
            || telemetry::json!({ "task": task.name.clone(), "replayed": replayed }),
        );
    }
    // The quarantine is consulted once the replay phase is over. Never
    // earlier: configurations quarantined mid-run were still *proposed*
    // by the recorded run before their failure, so pre-excluding them
    // would make the replayed proposal stream diverge from the log.
    let mut quarantine_applied = false;

    while measured < opts.n_trial && since_best < opts.early_stopping {
        let cap = opts.fail_rate_cap_or_default();
        if cap < 1.0 && measured >= TuneOptions::FAIL_RATE_MIN_TRIALS {
            #[allow(clippy::cast_precision_loss)]
            let rate = failed as f64 / measured as f64;
            if rate > cap {
                let diag = format!(
                    "fail-rate cap tripped: {failed}/{measured} trials failed \
                     ({rate:.2} > {cap:.2}) — aborting task"
                );
                tel.count("tune.aborted", 1);
                tel.report(|| format!("{}: {diag}", task.name));
                aborted = Some(diag);
                break;
            }
        }
        if replay.is_empty() && !quarantine_applied {
            let quarantined = measurer.quarantined(task);
            if !quarantined.is_empty() {
                tuner.exclude(&quarantined);
            }
            quarantine_applied = true;
        }
        let want = tuner.preferred_batch().min(opts.batch_size).min(opts.n_trial - measured).max(1);
        let batch = tuner.next_batch(want);
        if batch.is_empty() {
            break;
        }
        // Positionally aligned with `batch`; empty when capture is off or
        // the tuner has no model (then every proposal is blind).
        let diags = if capture { tuner.take_diagnostics() } else { Vec::new() };
        // Split the proposed batch into a replayed prefix (recorded trials
        // fed back without re-measuring) and a live tail submitted as ONE
        // batch through `measure_batch` — the executor's fan-out point.
        // Per-config `measure` calls are deliberately absent here: the
        // serial default of `measure_batch` covers plain measurers.
        let mut outcomes: Vec<(f64, f64, bool)> = Vec::with_capacity(batch.len());
        for cfg in &batch {
            match replay.split_first() {
                Some((rec, rest)) if rec.config_index == cfg.index => {
                    replay = rest;
                    outcomes.push((rec.gflops, rec.latency_s, false));
                }
                Some((rec, _)) => {
                    // The proposal stream no longer matches the log
                    // (different binary or options?). Degrade gracefully:
                    // stop replaying and measure live from here.
                    let at = measured + outcomes.len();
                    tel.report(|| {
                        format!(
                            "{}: resume replay diverged at trial {at} (logged config {}, \
                             proposed {}) — continuing with live measurements",
                            task.name, rec.config_index, cfg.index
                        )
                    });
                    replay = &[];
                    break;
                }
                None => break,
            }
        }
        let live_tail = &batch[outcomes.len()..];
        if !live_tail.is_empty() {
            outcomes.extend(
                measurer
                    .measure_batch(task, space, live_tail)
                    .into_iter()
                    .map(|r| (r.gflops, r.latency_s, true)),
            );
        }
        debug_assert_eq!(outcomes.len(), batch.len());

        let mut results = Vec::with_capacity(batch.len());
        for (i, (cfg, (gflops, latency_s, live))) in batch.into_iter().zip(outcomes).enumerate() {
            if gflops <= 0.0 {
                failed += 1;
            }
            let improved = best.as_ref().is_none_or(|(_, g)| gflops > *g);
            if improved && gflops > 0.0 {
                best = Some((cfg.clone(), gflops));
                since_best = 0;
            } else {
                since_best += 1;
            }
            let best_now = best.as_ref().map_or(0.0, |(_, g)| *g);
            let record = TrialRecord {
                trial: measured,
                config_index: cfg.index,
                gflops,
                latency_s,
                best_gflops: best_now,
            };
            if live {
                tel.event(telemetry::events::TRIAL_EVENT, || {
                    telemetry::json!({
                        "trial": measured as u64,
                        "config_index": cfg.index,
                        "gflops": gflops,
                        "best_gflops": best_now,
                        "improved": improved && gflops > 0.0,
                    })
                });
                tel.observe("trial.gflops", gflops);
                tel.count("tune.trials", 1);
                if tel.has_live_registry() {
                    // Per-task progress gauges for the live dashboard.
                    tel.gauge(&format!("task.{}.best_gflops", task.name), best_now);
                    #[allow(clippy::cast_precision_loss)]
                    tel.gauge(&format!("task.{}.trials", task.name), (measured + 1) as f64);
                }
                if let Some(sink) = hooks.on_trial.as_mut() {
                    sink(&record);
                }
            }
            if capture {
                let diag = diags.get(i).copied().unwrap_or_else(|| ProposalDiag::blind(cfg.index));
                debug_assert_eq!(diag.config_index, cfg.index, "diagnostics misaligned");
                let mrec = ModelPredRecord {
                    task: task.name.clone(),
                    round,
                    trial: record.trial,
                    config_index: cfg.index,
                    predicted_mean: diag.predicted_mean,
                    predicted_std: diag.predicted_std,
                    acquisition: diag.acquisition,
                    measured_gflops: gflops,
                };
                if live {
                    tel.event(telemetry::events::MODEL_PRED_EVENT, || {
                        telemetry::json!({
                            "round": mrec.round as u64,
                            "trial": mrec.trial as u64,
                            "config_index": mrec.config_index,
                            "predicted_mean": mrec.predicted_mean,
                            "predicted_std": mrec.predicted_std,
                            "acquisition": mrec.acquisition,
                            "measured_gflops": mrec.measured_gflops,
                        })
                    });
                }
                if let Some(p) = diag.predicted_mean {
                    if gflops > 0.0 {
                        cap_pred.push(p);
                        cap_meas.push(gflops);
                        if let Some(s) = diag.predicted_std {
                            if s > 0.0 {
                                cap_z_total += 1;
                                if ((gflops - p) / s).abs() <= 1.0 {
                                    cap_z_within += 1;
                                }
                            }
                        }
                    }
                }
                if let Some(sink) = hooks.on_model.as_mut() {
                    sink(&mrec);
                }
            }
            log.records.push(record);
            measured += 1;
            results.push((cfg, gflops));
        }
        if capture && tel.has_live_registry() {
            // Live-only model-quality gauges for `aaltune top`: cumulative
            // Spearman rank correlation between predictions and
            // measurements, and |coverage(|z| ≤ 1) − 0.683| calibration
            // error over trials with a predictive std.
            if cap_pred.len() >= 2 {
                tel.gauge("model.rank_corr", gbt::metrics::spearman(&cap_pred, &cap_meas));
            }
            if cap_z_total > 0 {
                #[allow(clippy::cast_precision_loss)]
                let coverage = cap_z_within as f64 / cap_z_total as f64;
                tel.gauge("model.calibration", (coverage - 0.683).abs());
            }
        }
        round += 1;
        {
            let _update = tel.span("tuner.update");
            tuner.update(&results);
        }
    }

    let (best_config, best_gflops) = match best {
        Some((c, g)) => (Some(c), g),
        None => (None, 0.0),
    };
    tel.count("tune.tasks_completed", 1);
    TaskTuneResult {
        task_name: task.name.clone(),
        method,
        best_config,
        best_gflops,
        num_measured: measured,
        log,
        aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{models, task::extract_tasks};
    use gpu_sim::{GpuDevice, SimMeasurer};

    fn measurer() -> SimMeasurer {
        SimMeasurer::new(GpuDevice::gtx_1080_ti())
    }

    fn task(idx: usize) -> TuningTask {
        extract_tasks(&models::mobilenet_v1(1)).remove(idx)
    }

    #[test]
    fn all_methods_produce_a_valid_best() {
        let t = task(0);
        let m = measurer();
        let opts = TuneOptions::smoke();
        for method in [Method::Random, Method::AutoTvm, Method::Bted, Method::BtedBao] {
            let r = tune_task(&t, &m, method, &opts);
            assert!(r.best_gflops > 0.0, "{method} found nothing");
            assert!(r.best_config.is_some());
            assert!(r.num_measured <= opts.n_trial);
            assert_eq!(r.log.num_measured(), r.num_measured);
        }
    }

    #[test]
    fn convergence_curve_is_monotone() {
        let t = task(1);
        let r = tune_task(&t, &measurer(), Method::BtedBao, &TuneOptions::smoke());
        let curve = r.log.convergence_curve();
        for w in curve.windows(2) {
            assert!(w[1] >= w[0], "best-so-far must be monotone");
        }
    }

    #[test]
    fn early_stopping_caps_measurements() {
        let t = task(0);
        let opts = TuneOptions { n_trial: 10_000, early_stopping: 24, ..TuneOptions::smoke() };
        let r = tune_task(&t, &measurer(), Method::Random, &opts);
        assert!(r.num_measured < 10_000, "early stopping must trigger");
    }

    #[test]
    fn deterministic_given_seed() {
        let t = task(2);
        let m = measurer();
        let opts = TuneOptions::smoke();
        let a = tune_task(&t, &m, Method::BtedBao, &opts);
        let b = tune_task(&t, &m, Method::BtedBao, &opts);
        assert_eq!(a.best_gflops, b.best_gflops);
        assert_eq!(a.log, b.log);
    }

    #[test]
    fn replaying_a_prefix_reproduces_the_uninterrupted_run() {
        let t = task(2);
        let m = measurer();
        let opts = TuneOptions::smoke();
        let full = tune_task(&t, &m, Method::BtedBao, &opts);
        assert!(full.log.records.len() > 10);

        // Resume from a mid-run prefix: the continued log must equal the
        // uninterrupted one exactly (same trials, same floats).
        for cut in [1, full.log.records.len() / 2, full.log.records.len()] {
            let prefix = &full.log.records[..cut];
            let resumed = tune_task_with(
                &t,
                &m,
                Method::BtedBao,
                &opts,
                TuneHooks { replay: Some(prefix), ..TuneHooks::default() },
            );
            assert_eq!(resumed.log, full.log, "cut at {cut} diverged");
            assert_eq!(resumed.best_gflops, full.best_gflops);
        }
    }

    #[test]
    fn on_trial_sink_sees_only_live_trials() {
        let t = task(0);
        let m = measurer();
        let opts = TuneOptions::smoke();
        let full = tune_task(&t, &m, Method::Bted, &opts);
        let cut = full.log.records.len() / 2;
        let mut seen = Vec::new();
        let mut sink = |r: &TrialRecord| seen.push(r.clone());
        let resumed = tune_task_with(
            &t,
            &m,
            Method::Bted,
            &opts,
            TuneHooks {
                on_trial: Some(&mut sink),
                replay: Some(&full.log.records[..cut]),
                ..TuneHooks::default()
            },
        );
        assert_eq!(resumed.log, full.log);
        assert_eq!(seen, full.log.records[cut..], "sink must see exactly the live tail");
    }

    /// Tunes with capture on, collecting the model records.
    fn tune_captured(
        t: &TuningTask,
        m: &SimMeasurer,
        method: Method,
        opts: &TuneOptions,
        replay: Option<&[TrialRecord]>,
    ) -> (TaskTuneResult, Vec<ModelPredRecord>) {
        let mut records = Vec::new();
        let mut sink = |r: &ModelPredRecord| records.push(r.clone());
        let result = tune_task_with(
            t,
            m,
            method,
            opts,
            TuneHooks { on_model: Some(&mut sink), replay, ..TuneHooks::default() },
        );
        (result, records)
    }

    #[test]
    fn capture_leaves_trial_logs_byte_identical() {
        let t = task(1);
        let m = measurer();
        let plain_opts = TuneOptions::smoke();
        let cap_opts = TuneOptions { capture_model: Some(true), ..plain_opts };
        for method in [Method::AutoTvm, Method::BtedBao] {
            let plain = tune_task(&t, &m, method, &plain_opts);
            let (captured, records) = tune_captured(&t, &m, method, &cap_opts, None);
            assert_eq!(plain.log, captured.log, "{method}: capture perturbed the loop");
            let plain_bytes = serde_json::to_string(&plain.log).unwrap();
            let cap_bytes = serde_json::to_string(&captured.log).unwrap();
            assert_eq!(plain_bytes, cap_bytes, "{method}: log bytes differ");
            // One model record per trial, aligned with the trial log.
            assert_eq!(records.len(), captured.log.records.len());
            for (mr, tr) in records.iter().zip(&captured.log.records) {
                assert_eq!(mr.trial, tr.trial);
                assert_eq!(mr.config_index, tr.config_index);
                assert_eq!(mr.measured_gflops, tr.gflops);
            }
            // Past initialization the model must actually have opinions.
            assert!(
                records.iter().any(|r| r.predicted_mean.is_some()),
                "{method}: no model opinions captured"
            );
            // Blind proposals never fabricate an opinion.
            let init = &records[..plain_opts.init_points.min(records.len())];
            assert!(init.iter().all(|r| r.predicted_mean.is_none()));
        }
    }

    #[test]
    fn capture_disabled_never_calls_the_model_sink() {
        let t = task(0);
        let (_, records) =
            tune_captured(&t, &measurer(), Method::Bted, &TuneOptions::smoke(), None);
        assert!(records.is_empty(), "capture off must be zero-cost: no records");
    }

    #[test]
    fn resumed_runs_rebuild_identical_model_records() {
        let t = task(2);
        let m = measurer();
        let opts = TuneOptions { capture_model: Some(true), ..TuneOptions::smoke() };
        let (full, full_records) = tune_captured(&t, &m, Method::BtedBao, &opts, None);
        assert!(full_records.len() > 10);
        let cut = full.log.records.len() / 2;
        let (resumed, resumed_records) =
            tune_captured(&t, &m, Method::BtedBao, &opts, Some(&full.log.records[..cut]));
        assert_eq!(resumed.log, full.log);
        // Replay recomputes diagnostics deterministically: the resumed
        // stream equals the uninterrupted one for replayed AND live trials.
        assert_eq!(resumed_records, full_records);
    }

    #[test]
    fn warm_start_configs_are_measured_first_and_replay_stays_exact() {
        let t = task(1);
        let m = measurer();
        let opts = TuneOptions::smoke();
        // Seed with three distinct configs (one duplicated: must dedup).
        let space = space_for_task(&t);
        let warm: Vec<Config> =
            [7u64, 3, 7, 11].iter().map(|&i| space.config(i % space.len()).unwrap()).collect();
        let r = tune_task_with(
            &t,
            &m,
            Method::Bted,
            &opts,
            TuneHooks { warm_start: Some(&warm), ..TuneHooks::default() },
        );
        let measured: Vec<u64> = r.log.records.iter().map(|rec| rec.config_index).collect();
        assert_eq!(&measured[..3], &[7, 3, 11], "warm configs lead, deduplicated");
        assert!(r.num_measured <= opts.n_trial, "budget unchanged by warm start");

        // A warm run resumes exactly like a cold one: replaying a prefix
        // with the same warm slice reproduces the identical log.
        let cut = r.log.records.len() / 2;
        let resumed = tune_task_with(
            &t,
            &m,
            Method::Bted,
            &opts,
            TuneHooks {
                warm_start: Some(&warm),
                replay: Some(&r.log.records[..cut]),
                ..TuneHooks::default()
            },
        );
        assert_eq!(resumed.log, r.log);

        // Without warm start the run differs (the seeding is real).
        let cold = tune_task(&t, &m, Method::Bted, &opts);
        assert_ne!(cold.log.records[0].config_index, 7);
    }

    #[test]
    fn fail_rate_cap_aborts_with_a_diagnostic() {
        struct AlwaysFails;
        impl Measurer for AlwaysFails {
            fn measure(
                &self,
                _t: &TuningTask,
                _s: &ConfigSpace,
                _c: &Config,
            ) -> gpu_sim::MeasureResult {
                gpu_sim::MeasureResult::failed(gpu_sim::MeasureError::new(
                    gpu_sim::MeasureErrorKind::LaunchCrash,
                    "boom",
                ))
            }
        }
        let t = task(0);
        let opts = TuneOptions {
            fail_rate_cap: Some(0.9),
            n_trial: 4096,
            early_stopping: 4096,
            ..TuneOptions::smoke()
        };
        let r = tune_task(&t, &AlwaysFails, Method::Random, &opts);
        let diag = r.aborted.expect("cap must trip when everything fails");
        assert!(diag.contains("fail-rate cap"), "{diag}");
        assert!(r.num_measured >= TuneOptions::FAIL_RATE_MIN_TRIALS);
        assert!(r.num_measured < 4096, "must abort well before the budget");
        assert!(r.best_config.is_none());

        // Disabled cap (default): same measurer burns the early-stopping
        // budget instead but completes without an abort diagnostic.
        let opts = TuneOptions { n_trial: 128, early_stopping: 128, ..TuneOptions::smoke() };
        let r = tune_task(&t, &AlwaysFails, Method::Random, &opts);
        assert!(r.aborted.is_none());
    }

    #[test]
    fn quarantined_configs_are_excluded_from_proposals() {
        use gpu_sim::{FaultConfig, FaultInjectingMeasurer, RetryPolicy, RobustMeasurer};
        let t = task(1);
        let m = RobustMeasurer::new(
            FaultInjectingMeasurer::new(measurer(), FaultConfig { rate: 0.3, seed: 5 }),
            RetryPolicy::default(),
        );
        let opts = TuneOptions::smoke();
        let r = tune_task(&t, &m, Method::Bted, &opts);
        assert!(r.best_gflops > 0.0, "tuning must survive 30% faults");
        let quarantined = m.quarantined(&t);
        assert!(!quarantined.is_empty(), "expected persistent faults at 30%");
        // A second task run against the same measurer starts with the
        // quarantine pre-applied: none of those configs is re-measured.
        let r2 = tune_task(&t, &m, Method::Bted, &opts);
        let measured: std::collections::HashSet<u64> =
            r2.log.records.iter().map(|rec| rec.config_index).collect();
        for q in &quarantined {
            assert!(!measured.contains(q), "quarantined config {q} was re-proposed");
        }
    }

    #[test]
    fn model_guided_methods_beat_random_on_average() {
        let t = task(3);
        let m = measurer();
        let mut rand_best = 0.0;
        let mut bao_best = 0.0;
        for seed in 0..3 {
            let opts = TuneOptions { seed, ..TuneOptions::smoke() };
            rand_best += tune_task(&t, &m, Method::Random, &opts).best_gflops;
            bao_best += tune_task(&t, &m, Method::BtedBao, &opts).best_gflops;
        }
        assert!(
            bao_best > rand_best * 0.95,
            "bted+bao {bao_best} should not lose badly to random {rand_best}"
        );
    }
}

//! Bootstrap-guided adaptive optimization (Algorithm 4).
//!
//! The iterative-optimization stage of the paper's framework. Each step:
//!
//! 1. Form the search scope `C_t` as the radius-`R` neighborhood of the
//!    previously selected configuration; if the relative improvement `r_t`
//!    (Equation 1) fell below `η`, widen to radius `τ·R`.
//! 2. Run [`crate::bs::bootstrap_select`] over `C_t` (Γ bagged evaluation
//!    functions; pick the candidate maximizing their sum).
//! 3. Measure the winner on hardware and append it to `(X, Y)`.
//!
//! Implemented as a [`crate::tuner::Tuner`] with batch size 1 so the shared
//! measurement loop (budget, early stopping, records) drives it like any
//! other strategy.

use crate::evaluator::{Evaluator, GbtEvaluator};
use crate::model_quality::ProposalDiag;
use crate::tuner::Tuner;
use gbt::GbtParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use schedule::neighborhood::sample_feature_neighborhood;
use schedule::{Config, ConfigSpace};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Parameters of Algorithm 4, defaulting to the paper's settings
/// `(η = 0.05, Γ = 2, τ = 1.5, R = 3)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaoOptions {
    /// Number of bootstrap resamples Γ.
    pub gamma: usize,
    /// Relative-improvement threshold η.
    pub eta: f64,
    /// Neighborhood enlargement factor τ (> 1).
    pub tau: f64,
    /// Base neighborhood radius R — Euclidean distance in *feature space*
    /// (Definition 1 encodes a configuration as a feature vector, so the
    /// paper's `R = 3` is a distance between those vectors; one factor-of-2
    /// tiling change is √2 apart).
    pub radius: f64,
    /// Maximum candidates sampled from the scope `C_t` per step (the paper
    /// evaluates all of `C`; sampling caps the cost on huge neighborhoods).
    pub scope_size: usize,
    /// Ceiling on the widened radius. The paper widens once to `τ·R`; we
    /// let consecutive stalls compound the widening (`τ^k·R`, reset on
    /// improvement) so the scope escapes deep local optima, capped here.
    pub max_radius: f64,
    /// Bootstrap fits use at most this many of the most recent measurements
    /// (plus the all-time elite), bounding the per-step evaluation-function
    /// cost on long runs — the same scalability concern the paper's batching
    /// addresses at initialization time.
    pub fit_window: usize,
}

impl Default for BaoOptions {
    fn default() -> Self {
        BaoOptions {
            gamma: 2,
            eta: 0.05,
            tau: 1.5,
            radius: 3.0,
            scope_size: 512,
            max_radius: 48.0,
            fit_window: 384,
        }
    }
}

/// The BAO tuner: owns the measured set and the adaptive search scope.
pub struct BaoTuner<'s, E = GbtEvaluator, F = Box<dyn Fn() -> GbtEvaluator>>
where
    E: Evaluator,
    F: Fn() -> E,
{
    space: &'s ConfigSpace,
    opts: BaoOptions,
    make_evaluator: F,
    /// Initial configurations still waiting to be measured (BTED's output).
    pending_init: Vec<Config>,
    /// The already-sampled set (X, Y).
    measured: Vec<(Config, f64)>,
    visited: HashSet<u64>,
    /// x*_{t-1}: the incumbent — the best configuration found so far (the
    /// paper defines y*_t as "the optimal performance values found in step
    /// t", so the scope centers on the running optimum).
    center: Option<(Config, f64)>,
    /// y*_{t-1}, y*_{t-2}: best-so-far values after the previous two steps.
    last_two: (Option<f64>, Option<f64>),
    /// Consecutive steps whose relative improvement fell below η.
    stall_widenings: u32,
    rng: StdRng,
    step: u64,
    capture: bool,
    diags: Vec<ProposalDiag>,
}

impl<'s> BaoTuner<'s> {
    /// Creates a BAO tuner with the paper's GBT evaluation function.
    #[must_use]
    pub fn new(
        space: &'s ConfigSpace,
        init: Vec<Config>,
        opts: BaoOptions,
        gbt: GbtParams,
        seed: u64,
    ) -> Self {
        BaoTuner::with_evaluator(space, init, opts, Box::new(move || GbtEvaluator::new(gbt)), seed)
    }
}

impl<'s, E, F> BaoTuner<'s, E, F>
where
    E: Evaluator,
    F: Fn() -> E,
{
    /// Creates a BAO tuner with a custom evaluation-function family.
    pub fn with_evaluator(
        space: &'s ConfigSpace,
        init: Vec<Config>,
        opts: BaoOptions,
        make_evaluator: F,
        seed: u64,
    ) -> Self {
        assert!(opts.tau > 1.0, "tau must enlarge the neighborhood");
        assert!(opts.gamma > 0, "need at least one bootstrap resample");
        BaoTuner {
            space,
            opts,
            make_evaluator,
            pending_init: init,
            measured: Vec::new(),
            visited: HashSet::new(),
            center: None,
            last_two: (None, None),
            stall_widenings: 0,
            rng: StdRng::seed_from_u64(seed),
            step: 0,
            capture: false,
            diags: Vec::new(),
        }
    }

    /// Equation (1): relative improvement between the previous two sampled
    /// values; `None` before step 2.
    fn relative_improvement(&self) -> Option<f64> {
        match self.last_two {
            (Some(y1), Some(y2)) if y1 > 0.0 => Some((y1 - y2) / y1),
            (Some(_), Some(_)) => Some(0.0),
            _ => None,
        }
    }

    /// The measurements the bootstrap models are fit on: the most recent
    /// `fit_window` plus the 32 best-ever (so the models never forget where
    /// the good region is). Failed trials (0 GFLOPS) are excluded — fitting
    /// on them teaches the bagged models a crater around every fault and
    /// repels the scope from the true optimum; quarantine/`visited` already
    /// keep known-bad configurations out of future scopes. When *every*
    /// measurement failed the raw set is used so bootstrap selection still
    /// has something to resample.
    fn fit_window(&self) -> Vec<(Config, f64)> {
        let valid: Vec<(Config, f64)> =
            self.measured.iter().filter(|(_, y)| *y > 0.0).cloned().collect();
        let source: Vec<(Config, f64)> =
            if valid.is_empty() { self.measured.clone() } else { valid };
        if source.len() <= self.opts.fit_window {
            return source;
        }
        let recent_start = source.len() - self.opts.fit_window;
        let mut out: Vec<(Config, f64)> = source[recent_start..].to_vec();
        let mut elite: Vec<&(Config, f64)> = source[..recent_start].iter().collect();
        elite.sort_by(|a, b| b.1.total_cmp(&a.1));
        out.extend(elite.into_iter().take(32).cloned());
        out
    }

    /// The current search scope C_t (Algorithm 4 lines 3-9). Consecutive
    /// sub-η steps compound the widening: radius = min(τ^k · R, max).
    fn scope(&mut self, center: &Config) -> Vec<Config> {
        let r_t = self.relative_improvement();
        let widen = r_t.is_some_and(|r| r < self.opts.eta);
        if widen {
            self.stall_widenings = self.stall_widenings.saturating_add(1);
        } else {
            self.stall_widenings = 0;
        }
        let radius = (self.opts.radius * self.opts.tau.powi(self.stall_widenings as i32))
            .min(self.opts.max_radius);
        let tel = telemetry::global();
        tel.event(telemetry::events::RADIUS_EVENT, || {
            telemetry::json!({
                "step": self.step,
                "r_t": r_t,
                "eta": self.opts.eta,
                "radius": radius,
                "widened": widen,
                "stall_widenings": u64::from(self.stall_widenings),
            })
        });
        if widen {
            tel.count("bao.widenings", 1);
        }
        let mut c = sample_feature_neighborhood(
            self.space,
            center,
            radius,
            self.opts.scope_size,
            &mut self.rng,
        );
        // A thin stream of global candidates rides along with the local
        // scope: the τ^∞ limit of the widening rule. Without it, a center
        // whose neighborhood is dense in invalid configurations (common for
        // small-spatial layers) traps the search in a pocket the bagged
        // models can never see out of.
        let global = (self.opts.scope_size / 8).max(8);
        for _ in 0..global {
            c.push(self.space.sample(&mut self.rng));
        }
        c.retain(|cfg| !self.visited.contains(&cfg.index));
        c.sort_by_key(|cfg| cfg.index);
        c.dedup_by_key(|cfg| cfg.index);
        c
    }
}

impl<E, F> Tuner for BaoTuner<'_, E, F>
where
    E: Evaluator,
    F: Fn() -> E,
{
    fn next_batch(&mut self, n: usize) -> Vec<Config> {
        self.diags.clear();
        // Initialization stage: drain the BTED set first.
        if !self.pending_init.is_empty() {
            let take = n.min(self.pending_init.len());
            let batch: Vec<Config> = self.pending_init.drain(..take).collect();
            if self.capture {
                self.diags.extend(batch.iter().map(|c| ProposalDiag::blind(c.index)));
            }
            return batch;
        }
        if self.measured.is_empty() {
            // No valid initial set: fall back to random exploration.
            let batch: Vec<Config> = (0..n).map(|_| self.space.sample(&mut self.rng)).collect();
            if self.capture {
                self.diags.extend(batch.iter().map(|c| ProposalDiag::blind(c.index)));
            }
            return batch;
        }
        // Line 1 / line 3: center on the incumbent (the best configuration
        // of the initial set on the first iteration).
        let center = self
            .center
            .clone()
            .unwrap_or_else(|| {
                self.measured
                    .iter()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .cloned()
                    // aal-lint: allow(unwrap, reason = "BAO only reaches ranking after at least one measurement")
                    .expect("measured is non-empty")
            })
            .0;
        let fit_set = self.fit_window();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let candidates = self.scope(&center);
            self.step += 1;
            let pick = if candidates.is_empty() {
                None
            } else {
                crate::bs::bootstrap_select_diag(
                    self.space,
                    &fit_set,
                    &candidates,
                    self.opts.gamma,
                    &self.make_evaluator,
                    self.step.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            };
            // Exhausted or degenerate neighborhood: random restart keeps the
            // search alive (the space is astronomically larger than the
            // visited set, so this terminates).
            let (cfg, diag) = match pick {
                Some((cfg, diag)) => (cfg, diag),
                None => {
                    let cfg = self.space.sample(&mut self.rng);
                    let diag = ProposalDiag::blind(cfg.index);
                    (cfg, diag)
                }
            };
            if self.capture {
                self.diags.push(diag);
            }
            self.visited.insert(cfg.index);
            out.push(cfg);
        }
        out
    }

    fn update(&mut self, results: &[(Config, f64)]) {
        for (cfg, y) in results {
            self.visited.insert(cfg.index);
            self.measured.push((cfg.clone(), *y));
            // Maintain the incumbent and the best-so-far history that
            // Equation (1) compares.
            if *y > 0.0 && self.center.as_ref().is_none_or(|(_, best)| *y > *best) {
                self.center = Some((cfg.clone(), *y));
            }
            let best_now = self.center.as_ref().map(|(_, b)| *b);
            self.last_two = (best_now, self.last_two.0);
        }
    }

    fn preferred_batch(&self) -> usize {
        if self.pending_init.is_empty() {
            1 // BAO selects one configuration per iteration.
        } else {
            self.pending_init.len()
        }
    }

    fn exclude(&mut self, indices: &[u64]) {
        // `visited` filters the BAO scope, so quarantined configurations
        // drop out of every future neighborhood.
        self.visited.extend(indices.iter().copied());
    }

    fn set_capture(&mut self, enabled: bool) {
        self.capture = enabled;
    }

    fn take_diagnostics(&mut self) -> Vec<ProposalDiag> {
        std::mem::take(&mut self.diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::Knob;

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new("toy", vec![Knob::split("a", 4096, 2), Knob::split("b", 4096, 2)])
    }

    /// Smooth peaked truth, maximum at choices (9, 4).
    fn truth(c: &Config) -> f64 {
        let a = c.choices[0] as f64;
        let b = c.choices[1] as f64;
        100.0 - ((a - 9.0) * (a - 9.0) + (b - 4.0) * (b - 4.0))
    }

    fn drive(tuner: &mut dyn Tuner, steps: usize) -> Vec<(Config, f64)> {
        let mut all = Vec::new();
        for _ in 0..steps {
            let batch = tuner.next_batch(tuner.preferred_batch());
            if batch.is_empty() {
                break;
            }
            let results: Vec<(Config, f64)> = batch
                .into_iter()
                .map(|c| {
                    let y = truth(&c);
                    (c, y)
                })
                .collect();
            tuner.update(&results);
            all.extend(results);
        }
        all
    }

    #[test]
    fn init_set_is_measured_first() {
        let space = toy_space();
        let init: Vec<Config> = (0..8).map(|i| space.config(i).unwrap()).collect();
        let mut t =
            BaoTuner::new(&space, init.clone(), BaoOptions::default(), GbtParams::default(), 0);
        let batch = t.next_batch(t.preferred_batch());
        assert_eq!(batch.len(), 8);
        assert_eq!(batch[0].index, init[0].index);
    }

    #[test]
    fn climbs_toward_the_peak() {
        let space = toy_space();
        let init: Vec<Config> =
            (0..12).map(|i| space.config((i * 7) % space.len()).unwrap()).collect();
        let opts = BaoOptions { scope_size: 64, ..BaoOptions::default() };
        let gbt = GbtParams { n_rounds: 15, ..GbtParams::default() };
        let mut t = BaoTuner::new(&space, init, opts, gbt, 1);
        let all = drive(&mut t, 40);
        let best = all.iter().map(|(_, y)| *y).fold(f64::NEG_INFINITY, f64::max);
        let best_init = all[..12].iter().map(|(_, y)| *y).fold(f64::NEG_INFINITY, f64::max);
        assert!(best > best_init, "BAO must improve on the initial set");
        assert!(best > 90.0, "best found {best}");
    }

    #[test]
    fn never_revisits_a_configuration() {
        let space = toy_space();
        let init: Vec<Config> = (0..6).map(|i| space.config(i).unwrap()).collect();
        let mut t = BaoTuner::new(
            &space,
            init,
            BaoOptions::default(),
            GbtParams { n_rounds: 10, ..GbtParams::default() },
            2,
        );
        let all = drive(&mut t, 30);
        let mut seen = HashSet::new();
        for (c, _) in &all {
            assert!(seen.insert(c.index), "revisited config {}", c.index);
        }
    }

    #[test]
    fn invalid_measurement_recenter_does_not_crash() {
        let space = toy_space();
        let init: Vec<Config> = (0..4).map(|i| space.config(i).unwrap()).collect();
        let mut t = BaoTuner::new(
            &space,
            init,
            BaoOptions::default(),
            GbtParams { n_rounds: 5, ..GbtParams::default() },
            3,
        );
        let batch = t.next_batch(t.preferred_batch());
        let results: Vec<(Config, f64)> = batch.into_iter().map(|c| (c, 0.0)).collect();
        t.update(&results); // all invalid
        let next = t.next_batch(1);
        assert_eq!(next.len(), 1);
    }

    #[test]
    fn failed_trials_are_excluded_from_the_fit_window() {
        let space = toy_space();
        let mut t = BaoTuner::new(&space, vec![], BaoOptions::default(), GbtParams::default(), 5);
        t.update(&[
            (space.config(0).unwrap(), 10.0),
            (space.config(1).unwrap(), 0.0), // fault
            (space.config(2).unwrap(), 12.0),
            (space.config(3).unwrap(), 0.0), // fault
        ]);
        let fit = t.fit_window();
        assert_eq!(fit.len(), 2, "zero-GFLOPS labels must not reach the surrogate");
        assert!(fit.iter().all(|(_, y)| *y > 0.0));
        // All-failed degenerate case: fall back to the raw set so BS can
        // still resample (it panics on an empty measured set).
        let mut t2 = BaoTuner::new(&space, vec![], BaoOptions::default(), GbtParams::default(), 6);
        t2.update(&[(space.config(0).unwrap(), 0.0)]);
        assert_eq!(t2.fit_window().len(), 1);
    }

    #[test]
    fn capture_aligns_one_diag_per_proposal() {
        let space = toy_space();
        let init: Vec<Config> = (0..6).map(|i| space.config(i).unwrap()).collect();
        let opts = BaoOptions { scope_size: 32, ..BaoOptions::default() };
        let gbt = GbtParams { n_rounds: 8, ..GbtParams::default() };
        let mut t = BaoTuner::new(&space, init, opts, gbt, 7);
        t.set_capture(true);
        // Init batch: blind diagnostics.
        let batch = t.next_batch(t.preferred_batch());
        let diags = t.take_diagnostics();
        assert_eq!(diags.len(), batch.len());
        assert!(diags.iter().all(|d| d.predicted_mean.is_none()));
        let results: Vec<(Config, f64)> = batch
            .into_iter()
            .map(|c| {
                let y = truth(&c);
                (c, y)
            })
            .collect();
        t.update(&results);
        // Model stage: bootstrap selection carries mean/std/acquisition.
        let batch = t.next_batch(1);
        let diags = t.take_diagnostics();
        assert_eq!(diags.len(), batch.len());
        let d = &diags[0];
        assert_eq!(d.config_index, batch[0].index);
        assert!(d.predicted_mean.is_some_and(f64::is_finite));
        assert!(d.predicted_std.is_some_and(|s| s >= 0.0));
        assert!(d.acquisition.is_some());
    }

    #[test]
    fn relative_improvement_tracks_last_two() {
        let space = toy_space();
        let mut t = BaoTuner::new(&space, vec![], BaoOptions::default(), GbtParams::default(), 4);
        assert!(t.relative_improvement().is_none());
        t.update(&[(space.config(0).unwrap(), 10.0)]);
        assert!(t.relative_improvement().is_none());
        t.update(&[(space.config(1).unwrap(), 12.0)]);
        // y*_{t-1} = 12, y*_{t-2} = 10 -> (12-10)/12.
        let r = t.relative_improvement().unwrap();
        assert!((r - 2.0 / 12.0).abs() < 1e-12);
    }
}

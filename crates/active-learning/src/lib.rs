//! The paper's contribution: an advanced active-learning framework for DNN
//! hardware deployment optimization.
//!
//! Two methods, embedded into an AutoTVM-style tuning loop:
//!
//! * **BTED** ([`bted`]) — batch transductive experimental design
//!   (Algorithms 1–2): build the initial measurement set by greedy TED over
//!   random batches, so the evaluation function starts from diverse,
//!   representative configurations instead of blind random samples.
//! * **BAO** ([`bao`]) — Bootstrap-guided adaptive optimization
//!   (Algorithms 3–4): in each step, fit Γ evaluation functions on bootstrap
//!   resamples of the measured set, pick the candidate maximizing their sum
//!   within an adaptive neighborhood of the previous selection, and widen
//!   the neighborhood when relative improvement stalls.
//!
//! The surrounding harness reproduces AutoTVM ([`tuner::XgbTuner`]):
//! XGBoost-style cost model ([`evaluator::GbtEvaluator`]), simulated
//! annealing candidate search ([`sa`]), ε-greedy batch selection and early
//! stopping. [`task_tuning::tune_task`] runs one node; [`model_tuning`]
//! tunes whole models and reports the end-to-end latency statistics of
//! Table I.
//!
//! # Example
//!
//! ```
//! use dnn_graph::{models, task::extract_tasks};
//! use gpu_sim::{GpuDevice, SimMeasurer};
//! use active_learning::{tune_task, Method, TuneOptions};
//!
//! let task = extract_tasks(&models::mobilenet_v1(1)).remove(0);
//! let measurer = SimMeasurer::new(GpuDevice::gtx_1080_ti());
//! let opts = TuneOptions { n_trial: 96, seed: 1, ..TuneOptions::default() };
//! let autotvm = tune_task(&task, &measurer, Method::AutoTvm, &opts);
//! let ours = tune_task(&task, &measurer, Method::BtedBao, &opts);
//! assert!(autotvm.best_gflops > 0.0 && ours.best_gflops > 0.0);
//! ```

pub mod bao;
pub mod bs;
pub mod bted;
pub mod evaluator;
pub mod model_quality;
pub mod model_tuning;
pub mod options;
pub mod records;
pub mod sa;
pub mod task_tuning;
pub mod ted;
pub mod transfer;
pub mod tuner;

pub use bao::BaoOptions;
pub use bted::BtedOptions;
pub use evaluator::{Evaluator, GbtEvaluator, RidgeEvaluator};
pub use model_quality::{
    read_model_quality, write_model_quality, ModelPredRecord, ProposalDiag, MODEL_QUALITY_FILE,
    MODEL_QUALITY_SCHEMA_VERSION,
};
pub use model_tuning::{tune_model, tune_model_parallel, ModelTuneResult};
pub use options::TuneOptions;
pub use records::{
    Checkpoint, DbProvenance, LogWriter, RecoveredLog, RunDir, RunManifest, TrialRecord, TuningLog,
    WarmSeed, CHECKPOINT_SCHEMA_VERSION, MANIFEST_SCHEMA_VERSION,
};
pub use task_tuning::{tune_task, tune_task_with, Method, TaskTuneResult, TuneHooks};
pub use transfer::{warm_start_configs, TransferStats, STALE_RECORD_COUNTER};

//! Batch transductive experimental design (Algorithm 2).
//!
//! TED on the full space is infeasible (its kernel matrix is |D|²). BTED
//! restores scalability through randomness and batching: draw `B` random
//! subsets of `M` candidates, TED each down to `m`, union the results, and
//! TED the union down to the final `m`. The batches are independent, so they
//! run on parallel threads — the "system parallelism" the paper highlights.

use crate::ted::{ted, TedKernel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use schedule::feature::features;
use schedule::{Config, ConfigSpace};
use serde::{Deserialize, Serialize};

/// Parameters of Algorithm 2, defaulting to the paper's experimental
/// settings: `(µ = 0.1, M = 500, m = 64, B = 10)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BtedOptions {
    /// Normalization coefficient µ.
    pub mu: f64,
    /// Candidates randomly drawn per batch (M).
    pub batch_candidates: usize,
    /// Points TED keeps per batch and finally (m).
    pub num_selected: usize,
    /// Number of batches (B).
    pub num_batches: usize,
    /// Kernel for the TED matrices.
    pub kernel: TedKernel,
}

impl Default for BtedOptions {
    fn default() -> Self {
        BtedOptions {
            mu: 0.1,
            batch_candidates: 500,
            num_selected: 64,
            num_batches: 10,
            kernel: TedKernel::Euclidean,
        }
    }
}

/// Runs one TED batch: sample `M` configs, keep the `m` most informative.
fn ted_batch(space: &ConfigSpace, opts: &BtedOptions, seed: u64) -> Vec<Config> {
    let tel = telemetry::global();
    let _span = tel.span("bted.batch");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let candidates = space.sample_distinct(&mut rng, opts.batch_candidates);
    tel.observe("bted.batch_size", candidates.len() as f64);
    let feats: Vec<Vec<f64>> = candidates.iter().map(|c| features(space, c)).collect();
    ted(&feats, opts.mu, opts.num_selected, opts.kernel)
        .into_iter()
        .map(|i| candidates[i].clone())
        .collect()
}

/// Algorithm 2: `BTED(V, µ, M, m, B)` over the task's configuration space.
///
/// Returns the initial configuration set `X` (at most `m` configurations;
/// fewer only if the space itself is smaller). Batches run on scoped
/// threads when more than one CPU is available.
///
/// # Example
///
/// ```
/// use active_learning::bted::{bted, BtedOptions};
/// use dnn_graph::{models, task::extract_tasks};
/// use schedule::template::space_for_task;
///
/// let task = extract_tasks(&models::mobilenet_v1(1)).remove(0);
/// let space = space_for_task(&task);
/// let opts = BtedOptions { batch_candidates: 100, num_batches: 2, ..BtedOptions::default() };
/// let init = bted(&space, &opts, 7);
/// assert_eq!(init.len(), 64); // the paper's m = 64
/// ```
#[must_use]
pub fn bted(space: &ConfigSpace, opts: &BtedOptions, seed: u64) -> Vec<Config> {
    let tel = telemetry::global();
    let _span = tel.span("bted");
    tel.event("bted.start", || {
        telemetry::json!({
            "num_batches": opts.num_batches as u64,
            "batch_candidates": opts.batch_candidates as u64,
            "num_selected": opts.num_selected as u64,
        })
    });
    let union: Vec<Config> = if opts.num_batches > 1 && num_cpus() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..opts.num_batches)
                .map(|b| {
                    let bseed = seed.wrapping_add(b as u64 * 0x9E37_79B9);
                    scope.spawn(move || ted_batch(space, opts, bseed))
                })
                .collect();
            // aal-lint: allow(unwrap, reason = "join propagates a worker panic; swallowing it would hide the failure")
            handles.into_iter().flat_map(|h| h.join().expect("TED batch panicked")).collect()
        })
    } else {
        (0..opts.num_batches)
            .flat_map(|b| ted_batch(space, opts, seed.wrapping_add(b as u64 * 0x9E37_79B9)))
            .collect()
    };

    // Line 5: the union may contain duplicates across batches.
    let raw_union = union.len();
    let mut seen = std::collections::HashSet::new();
    let union: Vec<Config> = union.into_iter().filter(|c| seen.insert(c.index)).collect();
    tel.event(
        "bted.union",
        || telemetry::json!({ "raw": raw_union as u64, "distinct": union.len() as u64 }),
    );

    // Line 6: final TED over the union.
    let _final_span = tel.span("bted.final_ted");
    let feats: Vec<Vec<f64>> = union.iter().map(|c| features(space, c)).collect();
    ted(&feats, opts.mu, opts.num_selected, opts.kernel)
        .into_iter()
        .map(|i| union[i].clone())
        .collect()
}

fn num_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ted::dispersion;
    use schedule::template::space_for_task;

    fn space() -> ConfigSpace {
        let task = dnn_graph::task::extract_tasks(&dnn_graph::models::mobilenet_v1(1)).remove(0);
        space_for_task(&task)
    }

    #[test]
    fn returns_m_distinct_configs() {
        let s = space();
        let opts = BtedOptions { batch_candidates: 100, num_batches: 3, ..BtedOptions::default() };
        let init = bted(&s, &opts, 1);
        assert_eq!(init.len(), 64);
        let mut idx: Vec<u64> = init.iter().map(|c| c.index).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 64);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = space();
        let opts = BtedOptions { batch_candidates: 80, num_batches: 2, ..BtedOptions::default() };
        let a: Vec<u64> = bted(&s, &opts, 5).iter().map(|c| c.index).collect();
        let b: Vec<u64> = bted(&s, &opts, 5).iter().map(|c| c.index).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bted_initial_set_is_more_dispersed_than_random() {
        // The claim behind Section III-A: BTED scatters the initial set.
        let s = space();
        let opts = BtedOptions {
            batch_candidates: 200,
            num_batches: 4,
            num_selected: 32,
            ..BtedOptions::default()
        };
        let sel = bted(&s, &opts, 3);
        let sel_feats: Vec<Vec<f64>> = sel.iter().map(|c| features(&s, c)).collect();
        let sel_idx: Vec<usize> = (0..sel_feats.len()).collect();
        let bted_disp = dispersion(&sel_feats, &sel_idx);

        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut rand_disp = 0.0;
        let reps = 10;
        for _ in 0..reps {
            let cfgs = s.sample_distinct(&mut rng, 32);
            let feats: Vec<Vec<f64>> = cfgs.iter().map(|c| features(&s, c)).collect();
            let idx: Vec<usize> = (0..feats.len()).collect();
            rand_disp += dispersion(&feats, &idx);
        }
        rand_disp /= f64::from(reps);
        assert!(
            bted_disp > rand_disp,
            "BTED dispersion {bted_disp} should beat random {rand_disp}"
        );
    }

    #[test]
    fn small_space_is_exhausted_gracefully() {
        let s = ConfigSpace::new(
            "tiny",
            vec![
                schedule::Knob::choice("a", vec![0, 1, 2]),
                schedule::Knob::choice("b", vec![0, 1]),
            ],
        );
        let opts = BtedOptions {
            batch_candidates: 100,
            num_batches: 2,
            num_selected: 64,
            ..BtedOptions::default()
        };
        let init = bted(&s, &opts, 0);
        assert_eq!(init.len(), 6, "cannot select more configs than exist");
    }
}

//! Bootstrap-guided sampling (Algorithm 3).
//!
//! `BS(X, Y, C, Γ)`: resample Γ sets of cardinality `|X|` from the measured
//! configurations, fit one evaluation function per resample, and return the
//! candidate in the search scope `C` maximizing the **sum** of the Γ
//! functions. Generic over the evaluation-function family via
//! [`crate::Evaluator`].

use crate::evaluator::Evaluator;
use crate::model_quality::ProposalDiag;
use gbt::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schedule::feature::features;
use schedule::{Config, ConfigSpace};

/// Selects the next configuration from `candidates`.
///
/// `measured` is the already-sampled set `(X, Y)` (configurations with their
/// measured GFLOPS). Returns `None` when `candidates` is empty.
///
/// # Example
///
/// ```
/// use active_learning::bs::bootstrap_select;
/// use active_learning::evaluator::RidgeEvaluator;
/// use schedule::{ConfigSpace, Knob};
///
/// let space = ConfigSpace::new("demo", vec![Knob::split("t", 64, 2)]);
/// // Measured set: larger inner factors performed better.
/// let measured: Vec<_> = (0..space.len())
///     .map(|i| {
///         let c = space.config(i).unwrap();
///         let inner = space.values(&c)[0].as_split().unwrap()[1] as f64;
///         (c, inner.log2())
///     })
///     .collect();
/// let candidates: Vec<_> = (0..space.len()).map(|i| space.config(i).unwrap()).collect();
/// let pick = bootstrap_select(&space, &measured, &candidates, 2, RidgeEvaluator::default, 1)
///     .expect("candidates are non-empty");
/// let inner = space.values(&pick)[0].as_split().unwrap()[1];
/// assert!(inner >= 32, "should pick a large inner factor, got {inner}");
/// ```
///
/// # Panics
///
/// Panics if `measured` is empty or `gamma == 0` — callers must seed the
/// loop with an initial measurement set (that is BTED's job).
pub fn bootstrap_select<E, F>(
    space: &ConfigSpace,
    measured: &[(Config, f64)],
    candidates: &[Config],
    gamma: usize,
    make_evaluator: F,
    seed: u64,
) -> Option<Config>
where
    E: Evaluator,
    F: Fn() -> E,
{
    bootstrap_select_diag(space, measured, candidates, gamma, make_evaluator, seed)
        .map(|(cfg, _)| cfg)
}

/// [`bootstrap_select`] also returning the winner's model diagnostics.
///
/// The Γ per-candidate predictions are already computed for the argmax;
/// accumulating their sum-of-squares alongside the sum yields the winner's
/// bagged mean and disagreement (std) with zero extra model evaluations —
/// which is what keeps introspection capture from perturbing the search.
///
/// # Panics
///
/// Same contract as [`bootstrap_select`].
pub fn bootstrap_select_diag<E, F>(
    space: &ConfigSpace,
    measured: &[(Config, f64)],
    candidates: &[Config],
    gamma: usize,
    make_evaluator: F,
    seed: u64,
) -> Option<(Config, ProposalDiag)>
where
    E: Evaluator,
    F: Fn() -> E,
{
    assert!(!measured.is_empty(), "BS needs an initial measured set");
    assert!(gamma > 0, "need at least one bootstrap resample");
    if candidates.is_empty() {
        return None;
    }

    let n = measured.len();
    let x_rows: Vec<Vec<f64>> = measured.iter().map(|(c, _)| features(space, c)).collect();
    let ys: Vec<f64> = measured.iter().map(|&(_, y)| y).collect();
    let cand_rows: Vec<Vec<f64>> = candidates.iter().map(|c| features(space, c)).collect();

    let tel = telemetry::global();
    let _span = tel.span("bs.select");
    tel.event("bs.start", || {
        telemetry::json!({
            "measured": n as u64,
            "candidates": candidates.len() as u64,
            "gamma": gamma as u64,
        })
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = vec![0.0f64; candidates.len()];
    let mut sq_scores = vec![0.0f64; candidates.len()];
    for g in 0..gamma {
        // Lines 2-3: bootstrap resample with |X_γ| = |X|.
        let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let xg_rows: Vec<&[f64]> = indices.iter().map(|&i| x_rows[i].as_slice()).collect();
        let xg = Matrix::from_rows(&xg_rows);
        let yg: Vec<f64> = indices.iter().map(|&i| ys[i]).collect();
        // Line 4: build the evaluation function f_γ.
        let mut eval = make_evaluator();
        {
            let _fit = tel.span("bs.fit");
            eval.fit(&xg, &yg, seed.wrapping_add(g as u64));
        }
        // Line 6 accumulation: Σ_γ f_γ(x), plus Σ_γ f_γ(x)² so the winner's
        // bagged mean/std fall out without a second prediction pass.
        let _predict = tel.span("bs.predict");
        for (i, row) in cand_rows.iter().enumerate() {
            let p = eval.predict_row(row);
            scores[i] += p;
            sq_scores[i] += p * p;
        }
    }

    let best = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        // aal-lint: allow(unwrap, reason = "bootstrap resampling requires the non-empty candidate set checked by the caller")
        .expect("candidates is non-empty");
    #[allow(clippy::cast_precision_loss)]
    let g = gamma as f64;
    let mean = scores[best] / g;
    let std = (sq_scores[best] / g - mean * mean).max(0.0).sqrt();
    let diag = ProposalDiag {
        config_index: candidates[best].index,
        predicted_mean: Some(mean),
        predicted_std: Some(std),
        acquisition: Some(scores[best]),
    };
    Some((candidates[best].clone(), diag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{GbtEvaluator, RidgeEvaluator};
    use rand_chacha::ChaCha8Rng;
    use schedule::Knob;

    /// A space whose "performance" is a simple function of the choices, so
    /// BS should find the candidate with the highest value.
    fn toy() -> (ConfigSpace, impl Fn(&Config) -> f64) {
        let space =
            ConfigSpace::new("toy", vec![Knob::split("a", 256, 2), Knob::split("b", 256, 2)]);
        let f = |c: &Config| (c.choices[0] as f64) - 0.5 * (c.choices[1] as f64);
        (space, f)
    }

    fn measured_set(
        space: &ConfigSpace,
        truth: impl Fn(&Config) -> f64,
        n: usize,
    ) -> Vec<(Config, f64)> {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        space
            .sample_distinct(&mut rng, n)
            .into_iter()
            .map(|c| {
                let y = truth(&c);
                (c, y)
            })
            .collect()
    }

    #[test]
    fn picks_a_high_value_candidate() {
        let (space, truth) = toy();
        let measured = measured_set(&space, &truth, 60);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let candidates = space.sample_distinct(&mut rng, 40);
        let chosen = bootstrap_select(&space, &measured, &candidates, 2, GbtEvaluator::default, 7)
            .expect("candidates non-empty");
        let best_truth = candidates.iter().map(&truth).fold(f64::NEG_INFINITY, f64::max);
        // The chosen candidate should be near the top of the candidate set.
        assert!(truth(&chosen) > 0.6 * best_truth, "chose {}", truth(&chosen));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let (space, truth) = toy();
        let measured = measured_set(&space, &truth, 10);
        let r = bootstrap_select(&space, &measured, &[], 2, GbtEvaluator::default, 0);
        assert!(r.is_none());
    }

    #[test]
    fn works_with_ridge_evaluator_too() {
        let (space, truth) = toy();
        let measured = measured_set(&space, &truth, 60);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let candidates = space.sample_distinct(&mut rng, 30);
        let chosen =
            bootstrap_select(&space, &measured, &candidates, 3, || RidgeEvaluator::new(0.1), 7)
                .expect("candidates non-empty");
        // Linear truth, linear model: should pick (nearly) the argmax.
        let best_truth = candidates.iter().map(&truth).fold(f64::NEG_INFINITY, f64::max);
        assert!(truth(&chosen) > 0.8 * best_truth);
    }

    #[test]
    fn deterministic_given_seed() {
        let (space, truth) = toy();
        let measured = measured_set(&space, &truth, 40);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let candidates = space.sample_distinct(&mut rng, 20);
        let a = bootstrap_select(&space, &measured, &candidates, 2, GbtEvaluator::default, 9);
        let b = bootstrap_select(&space, &measured, &candidates, 2, GbtEvaluator::default, 9);
        assert_eq!(a.map(|c| c.index), b.map(|c| c.index));
    }

    #[test]
    fn diag_variant_matches_plain_selection() {
        let (space, truth) = toy();
        let measured = measured_set(&space, &truth, 40);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let candidates = space.sample_distinct(&mut rng, 20);
        let plain = bootstrap_select(&space, &measured, &candidates, 3, GbtEvaluator::default, 11)
            .expect("candidates non-empty");
        let (cfg, diag) =
            bootstrap_select_diag(&space, &measured, &candidates, 3, GbtEvaluator::default, 11)
                .expect("candidates non-empty");
        assert_eq!(cfg.index, plain.index, "diag variant must not change the pick");
        assert_eq!(diag.config_index, cfg.index);
        // acquisition is the Γ-sum, predicted_mean its average.
        let acq = diag.acquisition.unwrap();
        let mean = diag.predicted_mean.unwrap();
        assert!((acq - 3.0 * mean).abs() < 1e-9);
        assert!(diag.predicted_std.unwrap() >= 0.0);
    }

    #[test]
    fn single_resample_diag_has_zero_std() {
        let (space, truth) = toy();
        let measured = measured_set(&space, &truth, 30);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let candidates = space.sample_distinct(&mut rng, 10);
        let (_, diag) =
            bootstrap_select_diag(&space, &measured, &candidates, 1, GbtEvaluator::default, 3)
                .expect("candidates non-empty");
        assert_eq!(diag.predicted_std.unwrap(), 0.0, "one model cannot disagree with itself");
    }

    #[test]
    #[should_panic(expected = "initial measured set")]
    fn empty_measured_panics() {
        let (space, _) = toy();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let candidates = space.sample_distinct(&mut rng, 5);
        let _ = bootstrap_select(&space, &[], &candidates, 2, GbtEvaluator::default, 0);
    }
}

//! The evaluation function abstraction.
//!
//! Section IV: "our framework is independent of the specific forms of
//! evaluation functions". Everything downstream (BS, BAO, the AutoTVM loop)
//! talks to this trait; the paper's XGBoost regression is
//! [`GbtEvaluator`], and [`RidgeEvaluator`] demonstrates swapping in a
//! completely different model family.

use gbt::{Gbt, GbtParams, Matrix};

/// A regression model mapping configuration features to performance.
pub trait Evaluator {
    /// Fits the model to `(x, y)`; `seed` controls any internal randomness.
    fn fit(&mut self, x: &Matrix, y: &[f64], seed: u64);

    /// Predicts the performance of one feature row.
    ///
    /// Must return a finite value once `fit` has been called.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predicts a batch (default: row-by-row).
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }
}

/// Gradient-boosted trees (the paper's XGBoost evaluation function).
#[derive(Debug, Clone, Default)]
pub struct GbtEvaluator {
    params: GbtParams,
    model: Option<Gbt>,
}

impl GbtEvaluator {
    /// Creates an unfitted evaluator with the given boosting parameters.
    #[must_use]
    pub fn new(params: GbtParams) -> Self {
        GbtEvaluator { params, model: None }
    }
}

impl Evaluator for GbtEvaluator {
    fn fit(&mut self, x: &Matrix, y: &[f64], seed: u64) {
        let tel = telemetry::global();
        let _span = tel.span("gbt.fit");
        // aal-lint: allow(wall-clock, reason = "measures evaluation wall-time for reporting; never feeds tuning decisions")
        let t0 = std::time::Instant::now();
        self.model = Some(Gbt::fit(&self.params, x, y, seed));
        tel.observe("gbt.fit_ms", t0.elapsed().as_secs_f64() * 1e3);
        tel.observe("gbt.fit_rows", x.rows() as f64);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        self.model.as_ref().map_or(0.0, |m| m.predict_row(row))
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let tel = telemetry::global();
        let _span = tel.span("gbt.predict");
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }
}

/// Closed-form ridge regression on the raw features plus a bias term.
///
/// A deliberately simple alternative evaluation function proving the
/// framework's model-agnosticism (and a useful speed baseline).
#[derive(Debug, Clone)]
pub struct RidgeEvaluator {
    /// L2 penalty.
    pub alpha: f64,
    weights: Vec<f64>,
}

impl RidgeEvaluator {
    /// Creates an unfitted ridge evaluator with penalty `alpha`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        RidgeEvaluator { alpha, weights: Vec::new() }
    }
}

impl Default for RidgeEvaluator {
    fn default() -> Self {
        RidgeEvaluator::new(1.0)
    }
}

impl Evaluator for RidgeEvaluator {
    fn fit(&mut self, x: &Matrix, y: &[f64], _seed: u64) {
        // Solve (AᵀA + αI) w = Aᵀy with A = [x | 1] by Gaussian elimination.
        let n = x.rows();
        let d = x.cols() + 1;
        let mut ata = vec![vec![0.0; d]; d];
        let mut aty = vec![0.0; d];
        let aug = |row: &[f64], j: usize| if j < row.len() { row[j] } else { 1.0 };
        for (i, &yi) in y.iter().enumerate().take(n) {
            let row = x.row(i);
            for a in 0..d {
                let va = aug(row, a);
                aty[a] += va * yi;
                for (b, entry) in ata[a].iter_mut().enumerate() {
                    *entry += va * aug(row, b);
                }
            }
        }
        for (a, row) in ata.iter_mut().enumerate() {
            row[a] += self.alpha;
        }
        // Gaussian elimination with partial pivoting.
        #[allow(clippy::needless_range_loop)] // row echelon needs index math
        for col in 0..d {
            let pivot = (col..d)
                .max_by(|&a, &b| ata[a][col].abs().total_cmp(&ata[b][col].abs()))
                // aal-lint: allow(unwrap, reason = "the evaluation grid is non-empty by construction")
                .expect("non-empty range");
            ata.swap(col, pivot);
            aty.swap(col, pivot);
            let p = ata[col][col];
            if p.abs() < 1e-12 {
                continue;
            }
            for r in 0..d {
                if r == col {
                    continue;
                }
                let f = ata[r][col] / p;
                for c in col..d {
                    ata[r][c] -= f * ata[col][c];
                }
                aty[r] -= f * aty[col];
            }
        }
        self.weights = (0..d)
            .map(|i| if ata[i][i].abs() < 1e-12 { 0.0 } else { aty[i] / ata[i][i] })
            .collect();
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if self.weights.is_empty() {
            return 0.0;
        }
        let bias = self.weights[self.weights.len() - 1];
        row.iter().zip(&self.weights).map(|(x, w)| x * w).sum::<f64>() + bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> =
            (0..100).map(|i| vec![(i % 10) as f64, (i / 10) as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 5.0).collect();
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn ridge_recovers_linear_function() {
        let (x, y) = linear_data();
        let mut e = RidgeEvaluator::new(1e-6);
        e.fit(&x, &y, 0);
        assert!((e.predict_row(&[3.0, 4.0]) - (6.0 - 4.0 + 5.0)).abs() < 0.05);
    }

    #[test]
    fn gbt_evaluator_learns() {
        let (x, y) = linear_data();
        let mut e = GbtEvaluator::default();
        e.fit(&x, &y, 0);
        let preds = e.predict(&x);
        assert!(gbt::metrics::r2(&y, &preds) > 0.95);
    }

    #[test]
    fn unfitted_evaluators_return_zero() {
        assert_eq!(GbtEvaluator::default().predict_row(&[1.0]), 0.0);
        assert_eq!(RidgeEvaluator::default().predict_row(&[1.0]), 0.0);
    }

    #[test]
    fn trait_objects_work() {
        let (x, y) = linear_data();
        let mut models: Vec<Box<dyn Evaluator>> =
            vec![Box::new(GbtEvaluator::default()), Box::new(RidgeEvaluator::default())];
        for m in &mut models {
            m.fit(&x, &y, 1);
            assert!(m.predict_row(x.row(0)).is_finite());
        }
    }
}

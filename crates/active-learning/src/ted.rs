//! Transductive experimental design (Algorithm 1).
//!
//! Greedy selection of the `m` most *representative* candidates: pick the
//! point whose kernel column has the largest deflated norm, then project its
//! contribution out of the kernel matrix. The paper computes the kernel
//! entries as Euclidean distances between configuration feature vectors
//! (Section III-A); the classic RBF kernel of Yu et al. (ICML 2006) is also
//! provided.

use serde::{Deserialize, Serialize};

/// Kernel used to build `K_VV`.
///
/// The paper states the kernel entries are "computed as Euclidean distance".
/// A raw distance matrix is not positive semi-definite and makes the
/// deflation of Algorithm 1 degenerate (after the first rank-1 subtraction
/// the largest column norms belong to points *near* the previous selection,
/// inverting the diversity objective). [`TedKernel::Euclidean`] therefore
/// uses the standard distance-induced Laplacian kernel
/// `k(u, v) = exp(-||u - v|| / ℓ)` with a self-tuning length scale ℓ (the
/// mean pairwise distance), which preserves the paper's intent — similarity
/// derived purely from Euclidean distance — while keeping the algorithm
/// well-posed. [`TedKernel::Rbf`] is the classic Gaussian variant of
/// Yu et al.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum TedKernel {
    /// Laplacian kernel of the Euclidean distance with a self-tuning
    /// length scale — the paper-faithful default.
    #[default]
    Euclidean,
    /// `k(u, v) = exp(-||u - v||² / (2σ²))` — classic TED.
    Rbf {
        /// Bandwidth σ.
        sigma: f64,
    },
}

fn kernel_matrix(features: &[Vec<f64>], kernel: TedKernel) -> Vec<f64> {
    let n = features.len();
    let mut d = vec![0.0; n * n];
    let mut sum = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            let d2: f64 =
                features[i].iter().zip(&features[j]).map(|(a, b)| (a - b) * (a - b)).sum();
            d[i * n + j] = d2;
            d[j * n + i] = d2;
            sum += d2.sqrt();
        }
    }
    let pairs = (n * (n - 1) / 2).max(1);
    let scale = (sum / pairs as f64).max(1e-9); // self-tuning length scale
    for v in &mut d {
        *v = match kernel {
            TedKernel::Euclidean => (-v.sqrt() / scale).exp(),
            TedKernel::Rbf { sigma } => (-*v / (2.0 * sigma * sigma)).exp(),
        };
    }
    d
}

/// Runs TED over `features`, returning the indices of the `m` selected
/// candidates in selection order (Algorithm 1: `TED(V, µ, m)`).
///
/// If `m >= features.len()` every index is returned.
///
/// # Example
///
/// ```
/// use active_learning::ted::{ted, TedKernel};
///
/// // Three clusters; TED's first picks spread across them.
/// let feats = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0],
///     vec![10.0, 0.0], vec![10.1, 0.0],
///     vec![0.0, 10.0], vec![0.1, 10.0],
/// ];
/// let picks = ted(&feats, 0.1, 3, TedKernel::Euclidean);
/// let cluster = |i: usize| i / 2;
/// let mut clusters: Vec<_> = picks.iter().map(|&i| cluster(i)).collect();
/// clusters.sort_unstable();
/// clusters.dedup();
/// assert_eq!(clusters.len(), 3, "one pick per cluster");
/// ```
///
/// # Panics
///
/// Panics if `features` is empty, rows are ragged, or `mu <= 0`.
#[must_use]
pub fn ted(features: &[Vec<f64>], mu: f64, m: usize, kernel: TedKernel) -> Vec<usize> {
    assert!(!features.is_empty(), "TED needs at least one candidate");
    assert!(mu > 0.0, "normalization coefficient must be positive");
    let n = features.len();
    let dim = features[0].len();
    assert!(features.iter().all(|f| f.len() == dim), "ragged feature rows");
    if m >= n {
        return (0..n).collect();
    }

    let tel = telemetry::global();
    let mut k = {
        let _span = tel.span("ted.kernel_matrix");
        kernel_matrix(features, kernel)
    };
    tel.observe("ted.candidates", n as f64);
    let _span = tel.span("ted.greedy_select");
    let mut selected = Vec::with_capacity(m);
    let mut taken = vec![false; n];

    for _ in 0..m {
        // Line 3: x = argmax_v ||K_v||² / (k(v,v) + µ).
        let mut best: Option<(usize, f64)> = None;
        for v in 0..n {
            if taken[v] {
                continue;
            }
            let col = &k[v * n..(v + 1) * n];
            let norm2: f64 = col.iter().map(|x| x * x).sum();
            let score = norm2 / (k[v * n + v] + mu);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((v, score));
            }
        }
        // aal-lint: allow(unwrap, reason = "the loop runs only while unselected candidates remain")
        let (x, _) = best.expect("at least one unselected candidate");
        taken[x] = true;
        selected.push(x);

        // Line 5: K -= K_x K_xᵀ / (k(x,x) + µ).
        let denom = k[x * n + x] + mu;
        let col_x: Vec<f64> = (0..n).map(|i| k[i * n + x]).collect();
        for i in 0..n {
            let ci = col_x[i] / denom;
            if ci == 0.0 {
                continue;
            }
            for j in 0..n {
                k[i * n + j] -= ci * col_x[j];
            }
        }
    }
    selected
}

/// Mean pairwise Euclidean distance of the rows `indices` of `features` —
/// the dispersion statistic used to compare initialization strategies.
///
/// # Panics
///
/// Panics if fewer than two indices are given.
#[must_use]
pub fn dispersion(features: &[Vec<f64>], indices: &[usize]) -> f64 {
    assert!(indices.len() >= 2, "dispersion needs at least two points");
    let mut total = 0.0;
    let mut count = 0usize;
    for (a, &i) in indices.iter().enumerate() {
        for &j in &indices[a + 1..] {
            let d2: f64 =
                features[i].iter().zip(&features[j]).map(|(x, y)| (x - y) * (x - y)).sum();
            total += d2.sqrt();
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cloud(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(0.0..10.0)).collect()).collect()
    }

    #[test]
    fn selects_m_distinct_indices() {
        let f = cloud(80, 5, 1);
        let sel = ted(&f, 0.1, 16, TedKernel::Euclidean);
        assert_eq!(sel.len(), 16);
        let mut s = sel.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 16, "indices must be distinct");
        assert!(s.iter().all(|&i| i < 80));
    }

    #[test]
    fn m_at_least_n_returns_all() {
        let f = cloud(10, 3, 2);
        assert_eq!(ted(&f, 0.1, 10, TedKernel::Euclidean), (0..10).collect::<Vec<_>>());
        assert_eq!(ted(&f, 0.1, 99, TedKernel::Euclidean).len(), 10);
    }

    /// Tight clusters with well-separated centers: dispersion differences
    /// are structural (between-cluster coverage), not sampling luck.
    fn clustered_cloud(
        per_cluster: usize,
        clusters: usize,
        dim: usize,
        seed: u64,
    ) -> Vec<Vec<f64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(per_cluster * clusters);
        for c in 0..clusters {
            for _ in 0..per_cluster {
                out.push(
                    (0..dim)
                        .map(|d| {
                            let center = if d == c % dim { 20.0 * (1.0 + c as f64) } else { 0.0 };
                            center + rng.gen_range(-0.5..0.5)
                        })
                        .collect(),
                );
            }
        }
        out
    }

    #[test]
    fn ted_beats_random_dispersion() {
        // The whole point of TED: selected points scatter across the space.
        // On clustered data a random subset over-samples some clusters and
        // misses others, while TED's deflation spreads its picks, so TED's
        // mean pairwise distance must come out ahead of the random average.
        let clusters = 6;
        let f = clustered_cloud(50, clusters, 6, 3);
        let n = f.len();
        let m = 12;
        let sel = ted(&f, 0.1, m, TedKernel::Euclidean);
        let covered: std::collections::HashSet<usize> = sel.iter().map(|&i| i / 50).collect();
        assert_eq!(covered.len(), clusters, "TED must cover every cluster: {sel:?}");

        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut random_disp = 0.0;
        let reps = 30;
        for _ in 0..reps {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..m {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            random_disp += dispersion(&f, &idx[..m]);
        }
        random_disp /= f64::from(reps);
        let ted_disp = dispersion(&f, &sel);
        assert!(
            ted_disp > random_disp,
            "TED dispersion {ted_disp} should beat random {random_disp}"
        );
    }

    #[test]
    fn rbf_kernel_also_selects_diverse_points() {
        let f = cloud(150, 4, 5);
        let sel = ted(&f, 0.1, 12, TedKernel::Rbf { sigma: 3.0 });
        assert_eq!(sel.len(), 12);
        let disp = dispersion(&f, &sel);
        assert!(disp > 0.0);
    }

    #[test]
    fn clustered_data_picks_from_far_clusters_first() {
        // Two tight clusters far apart plus one outlier mid-way: the first
        // two TED picks must not come from the same cluster.
        let mut f = Vec::new();
        for i in 0..20 {
            f.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..20 {
            f.push(vec![100.0 + 0.01 * i as f64, 0.0]);
        }
        let sel = ted(&f, 0.1, 2, TedKernel::Euclidean);
        let cluster = |i: usize| usize::from(i >= 20);
        assert_ne!(cluster(sel[0]), cluster(sel[1]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mu_panics() {
        let f = cloud(5, 2, 6);
        let _ = ted(&f, 0.0, 2, TedKernel::Euclidean);
    }
}

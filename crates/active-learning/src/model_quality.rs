//! Surrogate-model introspection records.
//!
//! The tuning loop records *what* it measures (trial logs) and *how fast*
//! (telemetry); this module records *why*: for every proposed
//! configuration, what the surrogate predicted before the measurement came
//! back. The per-run `model_quality.jsonl` file built from these records is
//! what `aaltune explain`, the HTML report's "Model quality" panel and the
//! `compare` rank-correlation gate consume.
//!
//! Capture is opt-in ([`crate::TuneOptions::capture_model`]) and pure: the
//! diagnostics are read off models the tuners already fitted, so enabling
//! it never touches an RNG stream or changes a proposal — trial logs stay
//! byte-identical with capture on or off.

use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write as _};
use std::path::Path;

/// Schema version of `model_quality.jsonl` (header line).
pub const MODEL_QUALITY_SCHEMA_VERSION: u32 = 1;

/// File name of the per-run prediction capture inside a run directory.
pub const MODEL_QUALITY_FILE: &str = "model_quality.jsonl";

/// What the surrogate believed about one proposed configuration at the
/// moment it was proposed.
///
/// Every field except the index is optional: random/grid proposals (and
/// the ε-greedy exploration fraction) carry no model opinion, and a
/// single-model surrogate (the AutoTVM XGB arm) has a mean but no
/// uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProposalDiag {
    /// Index of the proposed configuration.
    pub config_index: u64,
    /// Predicted performance in GFLOPS (already de-normalized).
    pub predicted_mean: Option<f64>,
    /// Prediction uncertainty in GFLOPS (bagged-ensemble disagreement).
    pub predicted_std: Option<f64>,
    /// Raw acquisition score the proposer ranked this configuration by
    /// (model units — only comparable within one round).
    pub acquisition: Option<f64>,
}

impl ProposalDiag {
    /// A diagnostic for a proposal the model had no opinion on.
    #[must_use]
    pub fn blind(config_index: u64) -> Self {
        ProposalDiag { config_index, ..ProposalDiag::default() }
    }
}

/// One line of `model_quality.jsonl`: a [`ProposalDiag`] joined with the
/// measurement that followed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPredRecord {
    /// Task the configuration belongs to.
    pub task: String,
    /// Proposal round (one `next_batch` call) within the task, 0-based.
    pub round: usize,
    /// Trial number within the task (matches the trial log).
    pub trial: usize,
    /// Configuration index.
    pub config_index: u64,
    /// Predicted performance in GFLOPS, if the model scored this proposal.
    pub predicted_mean: Option<f64>,
    /// Prediction uncertainty in GFLOPS, if the surrogate is an ensemble.
    pub predicted_std: Option<f64>,
    /// Acquisition score the proposer used.
    pub acquisition: Option<f64>,
    /// The measured outcome (0.0 for failed trials).
    pub measured_gflops: f64,
}

/// Header line of `model_quality.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ModelQualityHeader {
    kind: String,
    schema_version: u32,
}

/// Writes `records` as a `model_quality.jsonl` file (header line followed
/// by one record per line). The write is atomic (temp file + rename) so a
/// crash mid-write never leaves a half-file next to valid trial logs.
///
/// # Errors
///
/// Returns an error when the file cannot be created or written.
pub fn write_model_quality(path: &Path, records: &[ModelPredRecord]) -> std::io::Result<()> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        // aal-lint: allow(raw-artifact-write, reason = "temp side of temp+fsync+rename")
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        let header = ModelQualityHeader {
            kind: "model_quality".to_string(),
            schema_version: MODEL_QUALITY_SCHEMA_VERSION,
        };
        // aal-lint: allow(unwrap, reason = "header is a plain data struct; serialization cannot fail")
        writeln!(f, "{}", serde_json::to_string(&header).expect("header serializes"))?;
        for r in records {
            // aal-lint: allow(unwrap, reason = "prediction records are plain data; serialization cannot fail")
            writeln!(f, "{}", serde_json::to_string(r).expect("record serializes"))?;
        }
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads a `model_quality.jsonl` file back.
///
/// # Errors
///
/// Returns a message when the file is missing, the header is not a
/// `model_quality` header, or any record line fails to parse.
pub fn read_model_quality(path: &Path) -> Result<Vec<ModelPredRecord>, String> {
    let f =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut lines = std::io::BufReader::new(f).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| format!("{}: empty file", path.display()))?
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let header: ModelQualityHeader = serde_json::from_str(&header_line)
        .map_err(|e| format!("{}: bad header: {e}", path.display()))?;
    if header.kind != "model_quality" {
        return Err(format!("{}: not a model_quality file", path.display()));
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: ModelPredRecord = serde_json::from_str(&line)
            .map_err(|e| format!("{}: line {}: {e}", path.display(), i + 2))?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: &str, round: usize, trial: usize, pred: Option<f64>) -> ModelPredRecord {
        ModelPredRecord {
            task: task.to_string(),
            round,
            trial,
            config_index: trial as u64 * 7,
            predicted_mean: pred,
            predicted_std: pred.map(|p| p * 0.1),
            acquisition: pred,
            measured_gflops: 100.0 + trial as f64,
        }
    }

    #[test]
    fn round_trips_through_jsonl() {
        let dir = std::env::temp_dir().join("aaltune-mq-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(MODEL_QUALITY_FILE);
        let records =
            vec![rec("m.T1", 0, 0, None), rec("m.T1", 1, 1, Some(90.0)), rec("m.T2", 0, 0, None)];
        write_model_quality(&path, &records).unwrap();
        let back = read_model_quality(&path).unwrap();
        assert_eq!(back, records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_malformed_files_error() {
        let dir = std::env::temp_dir().join("aaltune-mq-malformed");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read_model_quality(&dir.join("nope.jsonl")).is_err());
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"kind\":\"trial_log\",\"schema_version\":1}\n").unwrap();
        let err = read_model_quality(&bad).unwrap_err();
        assert!(err.contains("not a model_quality file"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blind_diag_has_no_opinion() {
        let d = ProposalDiag::blind(42);
        assert_eq!(d.config_index, 42);
        assert!(d.predicted_mean.is_none() && d.predicted_std.is_none());
        assert!(d.acquisition.is_none());
    }
}

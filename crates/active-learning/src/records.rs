//! Tuning records — the JSONL log format (AutoTVM keeps an equivalent log
//! for transfer learning and post-hoc analysis) and the self-describing
//! per-run results directory.

use crate::options::TuneOptions;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{BufRead, Seek, Write};
use std::path::{Path, PathBuf};

/// One measured configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// 0-based measurement counter within the task.
    pub trial: usize,
    /// Flat configuration index in the task's space.
    pub config_index: u64,
    /// Measured GFLOPS (0.0 for a failed launch).
    pub gflops: f64,
    /// Measured kernel latency in seconds.
    pub latency_s: f64,
    /// Best GFLOPS seen up to and including this trial.
    pub best_gflops: f64,
}

/// The full log of one task-tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TuningLog {
    /// Task name.
    pub task_name: String,
    /// Method label (e.g. `"autotvm"`, `"bted+bao"`).
    pub method: String,
    /// All trials in measurement order.
    pub records: Vec<TrialRecord>,
}

impl TuningLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new(task_name: impl Into<String>, method: impl Into<String>) -> Self {
        TuningLog { task_name: task_name.into(), method: method.into(), records: Vec::new() }
    }

    /// The best-so-far GFLOPS curve (the y-axis of the paper's Fig. 4).
    #[must_use]
    pub fn convergence_curve(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.best_gflops).collect()
    }

    /// Number of measurements (the y-axis of Fig. 5(a)).
    #[must_use]
    pub fn num_measured(&self) -> usize {
        self.records.len()
    }

    /// Final best GFLOPS (0.0 for an empty log).
    #[must_use]
    pub fn best_gflops(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.best_gflops)
    }

    /// Writes the log as JSON lines: one header line, then one line per
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let header = serde_json::json!({
            "task_name": self.task_name,
            "method": self.method,
        });
        writeln!(w, "{header}")?;
        for r in &self.records {
            // aal-lint: allow(unwrap, reason = "TrialRecord is a plain data struct; serialization cannot fail")
            writeln!(w, "{}", serde_json::to_string(r).expect("record serializes"))?;
        }
        Ok(())
    }

    /// Recovers a log from raw bytes that may end mid-line (the writing
    /// process was killed mid-append). Every complete, parsable,
    /// newline-terminated line is kept; the first incomplete or
    /// malformed line and everything after it is dropped.
    /// `valid_bytes` is the byte offset of the recovered prefix, so the
    /// caller can truncate the file there and append seamlessly.
    ///
    /// # Errors
    ///
    /// Returns [`ReadLogError::Empty`] when no complete header line
    /// exists, and a parse error when the header is malformed — with no
    /// header nothing can be recovered.
    pub fn recover_jsonl(data: &[u8]) -> Result<RecoveredLog, ReadLogError> {
        let mut offset = 0usize;
        let mut log: Option<TuningLog> = None;
        let mut dropped_tail = false;
        while offset < data.len() {
            let Some(nl) = data[offset..].iter().position(|&b| b == b'\n') else {
                dropped_tail = true; // incomplete final line
                break;
            };
            let line_end = offset + nl + 1;
            let line = &data[offset..line_end];
            let Ok(text) = std::str::from_utf8(line) else {
                dropped_tail = true;
                break;
            };
            if text.trim().is_empty() {
                offset = line_end;
                continue;
            }
            match &mut log {
                None => {
                    let header: serde_json::Value = serde_json::from_str(text)?;
                    log = Some(TuningLog::new(
                        header["task_name"].as_str().unwrap_or_default(),
                        header["method"].as_str().unwrap_or_default(),
                    ));
                }
                Some(log) => match serde_json::from_str::<TrialRecord>(text) {
                    Ok(rec) => log.records.push(rec),
                    Err(_) => {
                        dropped_tail = true;
                        break;
                    }
                },
            }
            offset = line_end;
        }
        let log = log.ok_or(ReadLogError::Empty)?;
        Ok(RecoveredLog { log, valid_bytes: offset as u64, dropped_tail })
    }

    /// Reads a log written by [`TuningLog::write_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns an error for I/O failures or malformed lines.
    pub fn read_jsonl<R: BufRead>(r: R) -> Result<Self, ReadLogError> {
        let mut lines = r.lines();
        let header_line = lines.next().ok_or(ReadLogError::Empty)??;
        let header: serde_json::Value = serde_json::from_str(&header_line)?;
        let mut log = TuningLog::new(
            header["task_name"].as_str().unwrap_or_default(),
            header["method"].as_str().unwrap_or_default(),
        );
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            log.records.push(serde_json::from_str(&line)?);
        }
        Ok(log)
    }
}

/// A log recovered from a possibly crash-truncated file.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredLog {
    /// The parsed prefix of the log.
    pub log: TuningLog,
    /// Length in bytes of the recovered prefix (truncate the file here
    /// before appending).
    pub valid_bytes: u64,
    /// True when an incomplete or malformed tail was dropped.
    pub dropped_tail: bool,
}

/// An open, crash-safe trial-log writer: the header is written on
/// creation and every [`append`](LogWriter::append) flushes one complete
/// line to the OS before returning, so a killed process loses at most
/// the line it was mid-writing — which [`TuningLog::recover_jsonl`]
/// drops cleanly.
#[derive(Debug)]
pub struct LogWriter {
    file: std::fs::File,
    path: PathBuf,
}

impl LogWriter {
    /// Appends one trial record as a JSON line and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append(&mut self, rec: &TrialRecord) -> std::io::Result<()> {
        // aal-lint: allow(unwrap, reason = "TrialRecord is a plain data struct; serialization cannot fail")
        let line = serde_json::to_string(rec).expect("record serializes");
        writeln!(self.file, "{line}")
    }

    /// Where this log lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Version of the `checkpoint.json` format.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// Crash-recovery state written alongside the trial logs.
///
/// The checkpoint is advisory: correctness of `tune --resume` rests on
/// the trial logs themselves (the loop state — step counters, BAO
/// radius, RNG cursors — is a deterministic function of the replayed
/// trials). The checkpoint carries what the logs cannot: which tasks
/// already finished, and the measurement layer's quarantine set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_SCHEMA_VERSION`] at write time).
    pub schema_version: Option<u32>,
    /// Tasks whose logs are complete (their loops exited normally).
    pub completed_tasks: Vec<String>,
    /// The task that was mid-tuning when this checkpoint was written.
    pub in_flight: Option<String>,
    /// Trials logged so far for the in-flight task.
    pub trials_logged: Option<u64>,
    /// Crash-quarantined configurations, restored into the robust
    /// measurer on resume.
    pub quarantine: Option<gpu_sim::Quarantine>,
}

/// Version of the run-directory layout and manifest format.
///
/// Consumers (`aaltune runs` / `compare` / `report`) warn when a manifest
/// declares a newer version instead of silently misreading it. Manifests
/// with no `schema_version` field predate versioning and read as version 1.
///
/// Version 2 adds the crash-safety fields (`device`, `fault`, `resumed`)
/// and the convention that the manifest is written at run *start* (and
/// rewritten with `wall_time_s` at the end), so a killed run leaves
/// enough behind for `tune --resume`.
///
/// Version 3 adds `db` — the tuning-database provenance (path and policy)
/// when the run consulted one, so resume reattaches the same database and
/// analysis can tell warm runs from cold ones.
pub const MANIFEST_SCHEMA_VERSION: u32 = 3;

/// How a run used the persistent tuning database, recorded in the
/// manifest so the run is reproducible and `tune --resume` reattaches
/// the same store with the same policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbProvenance {
    /// Database root directory, as given on the command line.
    pub path: String,
    /// Consultation policy label (`"serve"` or `"warm"`).
    pub policy: String,
}

/// A persisted per-task warm-start seed, pinned at task start so a
/// resumed run replays the identical initial behaviour even after the
/// tuning database has moved on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmSeed {
    /// `"serve"` — an exact database hit whose best config is re-verified
    /// with a single measurement — or `"warm"` — configurations prepended
    /// to the tuner's initial set.
    pub mode: String,
    /// The seed configurations, best first.
    pub configs: Vec<schedule::Config>,
}

/// What produced a run — serialized as `manifest.json` so every results
/// directory is self-describing and reproducible.
///
/// The provenance fields (`schema_version`, `git_describe`, `wall_time_s`)
/// are optional so manifests written before they existed still parse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Model name (or a task label when tuning a single task).
    pub model: String,
    /// Method label (e.g. `"bted+bao"`).
    pub method: String,
    /// Names of the tasks tuned in this run.
    pub tasks: Vec<String>,
    /// Master seed of the run.
    pub seed: u64,
    /// The full option set, so the run can be replayed exactly.
    pub options: TuneOptions,
    /// Manifest format version ([`MANIFEST_SCHEMA_VERSION`] at write time).
    pub schema_version: Option<u32>,
    /// `git describe --always --dirty` of the tree that produced the run.
    pub git_describe: Option<String>,
    /// Wall-clock duration of the whole run in seconds.
    pub wall_time_s: Option<f64>,
    /// Simulated device name, needed to rebuild the measurer on resume.
    pub device: Option<String>,
    /// Fault-injection settings of the run (`None` = no injection); a
    /// resumed run replays the identical fault stream from these.
    pub fault: Option<gpu_sim::FaultConfig>,
    /// Set when this run directory was continued by `tune --resume`.
    pub resumed: Option<bool>,
    /// Measurement worker threads used (`None` = serial / pre-executor).
    /// Advisory: worker count never changes results, only wall time.
    pub workers: Option<usize>,
    /// Simulated device slots in the executor's pool.
    pub devices: Option<usize>,
    /// Tuning-database provenance (`None` = the run used no database).
    pub db: Option<DbProvenance>,
}

impl RunManifest {
    /// The declared format version, defaulting pre-versioning manifests
    /// to 1.
    #[must_use]
    pub fn schema_version(&self) -> u32 {
        self.schema_version.unwrap_or(1)
    }

    /// A warning when this manifest was written by a newer format than this
    /// crate understands, `None` otherwise.
    #[must_use]
    pub fn schema_warning(&self) -> Option<String> {
        let v = self.schema_version();
        (v > MANIFEST_SCHEMA_VERSION).then(|| {
            format!(
                "manifest declares schema version {v}, newer than the supported \
                 {MANIFEST_SCHEMA_VERSION} — fields may be misread"
            )
        })
    }
}

/// A per-run results directory:
///
/// ```text
/// <root>/
///   manifest.json      what produced the run (RunManifest)
///   logs/<task>.jsonl  one TuningLog per tuned task
///   trace.jsonl        telemetry trace (written by the caller)
/// ```
#[derive(Debug, Clone)]
pub struct RunDir {
    root: PathBuf,
}

impl RunDir {
    /// Creates `root` (and its `logs/` subdirectory), reusing it if present.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(root.join("logs"))?;
        Ok(RunDir { root })
    }

    /// The directory itself.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Default location for the run's telemetry trace.
    #[must_use]
    pub fn trace_path(&self) -> PathBuf {
        self.root.join("trace.jsonl")
    }

    /// Location of the live JSON metrics snapshot (`metrics.snapshot.json`),
    /// rewritten atomically by the snapshot writer while the run executes.
    #[must_use]
    pub fn snapshot_path(&self) -> PathBuf {
        self.root.join(telemetry::SNAPSHOT_FILE)
    }

    /// Location of the live Prometheus text snapshot (`metrics.prom`).
    #[must_use]
    pub fn prom_path(&self) -> PathBuf {
        self.root.join(telemetry::PROM_FILE)
    }

    /// Location of the model-introspection capture (`model_quality.jsonl`),
    /// written once after the run when capture is on.
    #[must_use]
    pub fn model_quality_path(&self) -> PathBuf {
        self.root.join(crate::model_quality::MODEL_QUALITY_FILE)
    }

    /// Writes `manifest.json`.
    ///
    /// # Errors
    ///
    /// Propagates file-write failures.
    pub fn write_manifest(&self, manifest: &RunManifest) -> std::io::Result<()> {
        // aal-lint: allow(unwrap, reason = "RunManifest is a plain data struct; serialization cannot fail")
        let body = serde_json::to_string_pretty(manifest).expect("manifest serializes");
        // Temp + fsync + rename: the registry and `aaltune top` read the
        // manifest of live runs, so a torn write must never be visible.
        let tmp = self.root.join("manifest.json.tmp");
        {
            use std::io::Write as _;
            // aal-lint: allow(raw-artifact-write, reason = "temp side of temp+fsync+rename")
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.root.join("manifest.json"))
    }

    /// Where the log of `task_name` lives (task names may contain
    /// path-hostile characters; the file name is a flattened form).
    #[must_use]
    pub fn log_path(&self, task_name: &str) -> PathBuf {
        let stem: String = task_name
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
            .collect();
        self.root.join("logs").join(format!("{stem}.jsonl"))
    }

    /// Writes one task's log as `logs/<task>.jsonl`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn write_log(&self, log: &TuningLog) -> std::io::Result<PathBuf> {
        let path = self.log_path(&log.task_name);
        // aal-lint: allow(raw-artifact-write, reason = "whole-log rewrite of a regenerable view; recovery trims torn tails via valid-prefix parse")
        let f = std::fs::File::create(&path)?;
        log.write_jsonl(std::io::BufWriter::new(f))?;
        Ok(path)
    }

    /// Opens a fresh crash-safe log for `task_name`: truncates any
    /// existing file, writes the header line, and returns a
    /// [`LogWriter`] for per-trial appends.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn create_log(&self, task_name: &str, method: &str) -> std::io::Result<LogWriter> {
        let path = self.log_path(task_name);
        // aal-lint: allow(raw-artifact-write, reason = "opens the crash-safe append-only log; recovery trims torn tails")
        let mut file = std::fs::File::create(&path)?;
        let header = serde_json::json!({ "task_name": task_name, "method": method });
        writeln!(file, "{header}")?;
        Ok(LogWriter { file, path })
    }

    /// Recovers the crash-truncated log of `task_name` for resumption:
    /// parses the valid prefix, truncates the file to exactly those
    /// bytes (dropping a half-written final line), and reopens it for
    /// appending. Returns `None` when no log file exists yet.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a file so damaged that not even the
    /// header survives is a [`ReadLogError::Empty`]/parse error.
    pub fn recover_log(
        &self,
        task_name: &str,
    ) -> Result<Option<(RecoveredLog, LogWriter)>, ReadLogError> {
        let path = self.log_path(task_name);
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let recovered = TuningLog::recover_jsonl(&data)?;
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(recovered.valid_bytes)?;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Some((recovered, LogWriter { file, path })))
    }

    /// Where the crash-recovery checkpoint lives.
    #[must_use]
    pub fn checkpoint_path(&self) -> PathBuf {
        self.root.join("checkpoint.json")
    }

    /// Writes `checkpoint.json` atomically: write a temp file, fsync it,
    /// rename over the old one. The fsync matters — without it the rename
    /// can land before the data on a power cut, publishing a truncated
    /// checkpoint. A crash at any step leaves either the previous
    /// checkpoint or the complete new one, never a torn in-place write.
    ///
    /// # Errors
    ///
    /// Propagates file-write failures.
    pub fn write_checkpoint(&self, checkpoint: &Checkpoint) -> std::io::Result<()> {
        // aal-lint: allow(unwrap, reason = "checkpoint struct is plain data; serialization cannot fail")
        let body = serde_json::to_string_pretty(checkpoint).expect("checkpoint serializes");
        let tmp = self.root.join("checkpoint.json.tmp");
        {
            // aal-lint: allow(raw-artifact-write, reason = "temp side of temp+fsync+rename")
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.checkpoint_path())
    }

    /// Reads back `checkpoint.json`; `None` when the run never wrote one.
    ///
    /// # Errors
    ///
    /// Returns I/O failures or a parse error for a malformed checkpoint.
    pub fn read_checkpoint(&self) -> Result<Option<Checkpoint>, ReadLogError> {
        let body = match std::fs::read_to_string(self.checkpoint_path()) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(serde_json::from_str(&body)?))
    }

    /// Where the persisted warm-start seed of `task_name` lives.
    ///
    /// Warm-start configurations are derived from the tuning database at
    /// task *start* and persisted here before the first trial, so a
    /// resumed run replays the identical initial set even after the
    /// database has moved on. Re-deriving on resume would diverge.
    #[must_use]
    pub fn warm_start_path(&self, task_name: &str) -> PathBuf {
        let log = self.log_path(task_name);
        // aal-lint: allow(unwrap, reason = "the glob matched *.jsonl, so a file stem always exists")
        let stem = log.file_stem().expect("log paths have stems").to_string_lossy();
        self.root.join("warm").join(format!("{stem}.json"))
    }

    /// Persists the warm-start seed for `task_name` atomically
    /// (write-temp, fsync, rename — same contract as the checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates file-write failures.
    pub fn write_warm_start(&self, task_name: &str, seed: &WarmSeed) -> std::io::Result<()> {
        let path = self.warm_start_path(task_name);
        // aal-lint: allow(unwrap, reason = "warm paths are <run>/warm/<file>, so a parent always exists")
        std::fs::create_dir_all(path.parent().expect("warm path has a parent"))?;
        let tmp = path.with_extension("json.tmp");
        // aal-lint: allow(unwrap, reason = "seed record is plain data; serialization cannot fail")
        let body = serde_json::to_string(seed).expect("seed serializes");
        {
            // aal-lint: allow(raw-artifact-write, reason = "temp side of temp+fsync+rename")
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Reads back the persisted warm-start seed; `None` when the task
    /// started cold.
    ///
    /// # Errors
    ///
    /// Returns I/O failures or a parse error for a damaged file.
    pub fn read_warm_start(&self, task_name: &str) -> Result<Option<WarmSeed>, ReadLogError> {
        let body = match std::fs::read_to_string(self.warm_start_path(task_name)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(serde_json::from_str(&body)?))
    }

    /// Reads back `manifest.json`.
    ///
    /// # Errors
    ///
    /// Returns I/O failures or a parse error for a malformed manifest.
    pub fn read_manifest(&self) -> Result<RunManifest, ReadLogError> {
        let body = std::fs::read_to_string(self.root.join("manifest.json"))?;
        Ok(serde_json::from_str(&body)?)
    }

    /// Reads every task log under `logs/`, sorted by file name so the order
    /// is stable across platforms.
    ///
    /// # Errors
    ///
    /// Returns I/O failures or the first malformed log encountered.
    pub fn read_logs(&self) -> Result<Vec<TuningLog>, ReadLogError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(self.root.join("logs"))?
            .map(|e| e.map(|e| e.path()))
            .collect::<std::io::Result<_>>()?;
        paths.sort();
        paths
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .map(|p| {
                let f = std::fs::File::open(&p)?;
                TuningLog::read_jsonl(std::io::BufReader::new(f))
            })
            .collect()
    }
}

/// Errors from [`TuningLog::read_jsonl`].
#[derive(Debug)]
pub enum ReadLogError {
    /// The stream contained no header line.
    Empty,
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line was not valid JSON for its position.
    Parse(serde_json::Error),
}

impl fmt::Display for ReadLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadLogError::Empty => write!(f, "log stream is empty"),
            ReadLogError::Io(e) => write!(f, "i/o error reading log: {e}"),
            ReadLogError::Parse(e) => write!(f, "malformed log line: {e}"),
        }
    }
}

impl std::error::Error for ReadLogError {}

impl From<std::io::Error> for ReadLogError {
    fn from(e: std::io::Error) -> Self {
        ReadLogError::Io(e)
    }
}

impl From<serde_json::Error> for ReadLogError {
    fn from(e: serde_json::Error) -> Self {
        ReadLogError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TuningLog {
        let mut log = TuningLog::new("m.T1", "bted+bao");
        for i in 0..5 {
            let g = (i * 100) as f64;
            log.records.push(TrialRecord {
                trial: i,
                config_index: i as u64 * 17,
                gflops: g,
                latency_s: 1e-3 / (g + 1.0),
                best_gflops: g,
            });
        }
        log
    }

    #[test]
    fn jsonl_round_trip() {
        let log = sample_log();
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let back = TuningLog::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn convergence_curve_matches_best() {
        let log = sample_log();
        assert_eq!(log.convergence_curve(), vec![0.0, 100.0, 200.0, 300.0, 400.0]);
        assert_eq!(log.best_gflops(), 400.0);
        assert_eq!(log.num_measured(), 5);
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(matches!(TuningLog::read_jsonl(&b""[..]), Err(ReadLogError::Empty)));
    }

    #[test]
    fn run_dir_round_trips_manifest_and_logs() {
        let root = std::env::temp_dir().join(format!("aaltune-rundir-{}", std::process::id()));
        let dir = RunDir::create(&root).unwrap();
        let manifest = RunManifest {
            model: "mobilenet_v1".into(),
            method: "bted+bao".into(),
            tasks: vec!["m.T1".into()],
            seed: 7,
            options: TuneOptions::smoke(),
            schema_version: Some(MANIFEST_SCHEMA_VERSION),
            git_describe: Some("v0-test".into()),
            wall_time_s: Some(1.25),
            device: Some("gtx1080ti".into()),
            fault: Some(gpu_sim::FaultConfig { rate: 0.1, seed: 3 }),
            resumed: None,
            workers: Some(4),
            devices: Some(2),
            db: Some(DbProvenance { path: "db".into(), policy: "warm".into() }),
        };
        dir.write_manifest(&manifest).unwrap();
        assert_eq!(dir.read_manifest().unwrap(), manifest);
        assert!(manifest.schema_warning().is_none());

        let log = sample_log();
        let path = dir.write_log(&log).unwrap();
        assert!(path.starts_with(dir.path().join("logs")));
        let back =
            TuningLog::read_jsonl(std::io::BufReader::new(std::fs::File::open(&path).unwrap()))
                .unwrap();
        assert_eq!(back, log);
        assert_eq!(dir.trace_path(), root.join("trace.jsonl"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn pre_versioned_manifest_parses_and_future_versions_warn() {
        // A manifest written before the provenance fields existed.
        let legacy = serde_json::json!({
            "model": "alexnet",
            "method": "autotvm",
            "tasks": ["a.T1"],
            "seed": 3u64,
            "options": TuneOptions::smoke(),
        });
        let m: RunManifest = serde_json::from_str(&legacy.to_string()).unwrap();
        assert_eq!(m.schema_version(), 1);
        assert!(m.schema_warning().is_none());
        assert_eq!(m.git_describe, None);

        let future = RunManifest {
            schema_version: Some(MANIFEST_SCHEMA_VERSION + 1),
            git_describe: None,
            wall_time_s: None,
            ..m
        };
        assert!(future.schema_warning().unwrap().contains("newer"));
    }

    #[test]
    fn recover_drops_incomplete_and_malformed_tails() {
        let log = sample_log();
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();

        // Intact bytes recover fully.
        let whole = TuningLog::recover_jsonl(&buf).unwrap();
        assert_eq!(whole.log, log);
        assert_eq!(whole.valid_bytes, buf.len() as u64);
        assert!(!whole.dropped_tail);

        // Kill mid-line: the partial final line is dropped, the rest kept.
        let cut = buf.len() - 7;
        let r = TuningLog::recover_jsonl(&buf[..cut]).unwrap();
        assert_eq!(r.log.records.len(), log.records.len() - 1);
        assert!(r.dropped_tail);
        assert!(r.valid_bytes < cut as u64);
        assert_eq!(
            &buf[..r.valid_bytes as usize],
            {
                let mut prefix = Vec::new();
                let mut shorter = log.clone();
                shorter.records.pop();
                shorter.write_jsonl(&mut prefix).unwrap();
                prefix
            }
            .as_slice()
        );

        // A malformed middle line also truncates from there.
        let mut garbled = buf.clone();
        let second_line = buf.iter().position(|&b| b == b'\n').unwrap() + 1;
        garbled[second_line] = b'@';
        let g = TuningLog::recover_jsonl(&garbled).unwrap();
        assert_eq!(g.log.records.len(), 0);
        assert!(g.dropped_tail);

        // No complete header at all: nothing recoverable.
        assert!(matches!(TuningLog::recover_jsonl(b"{\"task_na"), Err(ReadLogError::Empty)));
    }

    #[test]
    fn crash_safe_writer_recovers_and_resumes_byte_identically() {
        let root = std::env::temp_dir().join(format!("aaltune-logwriter-{}", std::process::id()));
        let dir = RunDir::create(&root).unwrap();
        let log = sample_log();

        // Reference: the log written in one piece.
        let mut reference = Vec::new();
        log.write_jsonl(&mut reference).unwrap();

        // Crash-safe path: append 3 records, simulate a kill by writing
        // a partial line, then recover and append the rest.
        let mut w = dir.create_log(&log.task_name, &log.method).unwrap();
        for rec in &log.records[..3] {
            w.append(rec).unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.log_path(&log.task_name))
                .unwrap();
            write!(f, "{{\"trial\":3,\"conf").unwrap();
        }
        drop(w);
        let (recovered, mut w) = dir.recover_log(&log.task_name).unwrap().unwrap();
        assert_eq!(recovered.log.records, log.records[..3]);
        assert!(recovered.dropped_tail);
        for rec in &log.records[3..] {
            w.append(rec).unwrap();
        }
        drop(w);
        let final_bytes = std::fs::read(dir.log_path(&log.task_name)).unwrap();
        assert_eq!(final_bytes, reference, "resumed log must be byte-identical");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_round_trips_and_is_optional() {
        let root = std::env::temp_dir().join(format!("aaltune-ckpt-{}", std::process::id()));
        let dir = RunDir::create(&root).unwrap();
        assert!(dir.read_checkpoint().unwrap().is_none());
        let mut quarantine = gpu_sim::Quarantine::new();
        quarantine.insert("m.T1", 42);
        let ckpt = Checkpoint {
            schema_version: Some(CHECKPOINT_SCHEMA_VERSION),
            completed_tasks: vec!["m.T0".into()],
            in_flight: Some("m.T1".into()),
            trials_logged: Some(17),
            quarantine: Some(quarantine),
        };
        dir.write_checkpoint(&ckpt).unwrap();
        assert_eq!(dir.read_checkpoint().unwrap().unwrap(), ckpt);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_checkpoint_is_detected_not_silently_ignored() {
        let root = std::env::temp_dir().join(format!("aaltune-ckpt-trunc-{}", std::process::id()));
        let dir = RunDir::create(&root).unwrap();
        let ckpt = Checkpoint {
            schema_version: Some(CHECKPOINT_SCHEMA_VERSION),
            completed_tasks: vec!["m.T0".into(), "m.T1".into()],
            in_flight: Some("m.T2".into()),
            trials_logged: Some(9),
            quarantine: None,
        };
        dir.write_checkpoint(&ckpt).unwrap();

        // Simulate torn bytes reaching disk (the failure the atomic
        // write-fsync-rename path exists to prevent): the reader must
        // report a parse error, never mistake the damage for "no
        // checkpoint" and silently restart from scratch.
        let path = dir.checkpoint_path();
        let body = std::fs::read(&path).unwrap();
        std::fs::write(&path, &body[..body.len() / 2]).unwrap();
        assert!(
            matches!(dir.read_checkpoint(), Err(ReadLogError::Parse(_))),
            "truncation must surface as a parse error"
        );

        // An interrupted atomic write (temp file present, rename never
        // happened) leaves the previous checkpoint fully intact.
        std::fs::write(&path, &body).unwrap();
        std::fs::write(root.join("checkpoint.json.tmp"), b"{\"partial").unwrap();
        assert_eq!(dir.read_checkpoint().unwrap().unwrap(), ckpt);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn warm_start_seed_round_trips_and_cold_tasks_read_none() {
        let root = std::env::temp_dir().join(format!("aaltune-warm-{}", std::process::id()));
        let dir = RunDir::create(&root).unwrap();
        assert!(dir.read_warm_start("m.T1").unwrap().is_none(), "cold task has no seed");
        let seed = WarmSeed {
            mode: "warm".into(),
            configs: vec![
                schedule::Config { index: 7, choices: vec![1, 2] },
                schedule::Config { index: 3, choices: vec![0, 1] },
            ],
        };
        dir.write_warm_start("m.T1", &seed).unwrap();
        assert_eq!(dir.read_warm_start("m.T1").unwrap().unwrap(), seed);
        assert!(dir.warm_start_path("m.T1").starts_with(root.join("warm")));
        // Damage must be loud, not an implicit cold start.
        std::fs::write(dir.warm_start_path("m.T1"), b"[{\"index\":").unwrap();
        assert!(matches!(dir.read_warm_start("m.T1"), Err(ReadLogError::Parse(_))));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn read_logs_returns_all_tasks_sorted() {
        let root = std::env::temp_dir().join(format!("aaltune-readlogs-{}", std::process::id()));
        let dir = RunDir::create(&root).unwrap();
        let mut a = sample_log();
        a.task_name = "m.T1".into();
        let mut b = sample_log();
        b.task_name = "m.T2".into();
        dir.write_log(&b).unwrap();
        dir.write_log(&a).unwrap();
        let logs = dir.read_logs().unwrap();
        assert_eq!(logs.len(), 2);
        assert_eq!(logs[0].task_name, "m.T1");
        assert_eq!(logs[1].task_name, "m.T2");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn malformed_line_is_an_error() {
        let data = b"{\"task_name\":\"t\",\"method\":\"m\"}\nnot json\n";
        assert!(matches!(TuningLog::read_jsonl(&data[..]), Err(ReadLogError::Parse(_))));
    }
}

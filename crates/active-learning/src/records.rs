//! Tuning records — the JSONL log format (AutoTVM keeps an equivalent log
//! for transfer learning and post-hoc analysis).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{BufRead, Write};

/// One measured configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// 0-based measurement counter within the task.
    pub trial: usize,
    /// Flat configuration index in the task's space.
    pub config_index: u64,
    /// Measured GFLOPS (0.0 for a failed launch).
    pub gflops: f64,
    /// Measured kernel latency in seconds.
    pub latency_s: f64,
    /// Best GFLOPS seen up to and including this trial.
    pub best_gflops: f64,
}

/// The full log of one task-tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TuningLog {
    /// Task name.
    pub task_name: String,
    /// Method label (e.g. `"autotvm"`, `"bted+bao"`).
    pub method: String,
    /// All trials in measurement order.
    pub records: Vec<TrialRecord>,
}

impl TuningLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new(task_name: impl Into<String>, method: impl Into<String>) -> Self {
        TuningLog { task_name: task_name.into(), method: method.into(), records: Vec::new() }
    }

    /// The best-so-far GFLOPS curve (the y-axis of the paper's Fig. 4).
    #[must_use]
    pub fn convergence_curve(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.best_gflops).collect()
    }

    /// Number of measurements (the y-axis of Fig. 5(a)).
    #[must_use]
    pub fn num_measured(&self) -> usize {
        self.records.len()
    }

    /// Final best GFLOPS (0.0 for an empty log).
    #[must_use]
    pub fn best_gflops(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.best_gflops)
    }

    /// Writes the log as JSON lines: one header line, then one line per
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let header = serde_json::json!({
            "task_name": self.task_name,
            "method": self.method,
        });
        writeln!(w, "{header}")?;
        for r in &self.records {
            writeln!(w, "{}", serde_json::to_string(r).expect("record serializes"))?;
        }
        Ok(())
    }

    /// Reads a log written by [`TuningLog::write_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns an error for I/O failures or malformed lines.
    pub fn read_jsonl<R: BufRead>(r: R) -> Result<Self, ReadLogError> {
        let mut lines = r.lines();
        let header_line = lines.next().ok_or(ReadLogError::Empty)??;
        let header: serde_json::Value = serde_json::from_str(&header_line)?;
        let mut log = TuningLog::new(
            header["task_name"].as_str().unwrap_or_default(),
            header["method"].as_str().unwrap_or_default(),
        );
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            log.records.push(serde_json::from_str(&line)?);
        }
        Ok(log)
    }
}

/// Errors from [`TuningLog::read_jsonl`].
#[derive(Debug)]
pub enum ReadLogError {
    /// The stream contained no header line.
    Empty,
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A line was not valid JSON for its position.
    Parse(serde_json::Error),
}

impl fmt::Display for ReadLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadLogError::Empty => write!(f, "log stream is empty"),
            ReadLogError::Io(e) => write!(f, "i/o error reading log: {e}"),
            ReadLogError::Parse(e) => write!(f, "malformed log line: {e}"),
        }
    }
}

impl std::error::Error for ReadLogError {}

impl From<std::io::Error> for ReadLogError {
    fn from(e: std::io::Error) -> Self {
        ReadLogError::Io(e)
    }
}

impl From<serde_json::Error> for ReadLogError {
    fn from(e: serde_json::Error) -> Self {
        ReadLogError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TuningLog {
        let mut log = TuningLog::new("m.T1", "bted+bao");
        for i in 0..5 {
            let g = (i * 100) as f64;
            log.records.push(TrialRecord {
                trial: i,
                config_index: i as u64 * 17,
                gflops: g,
                latency_s: 1e-3 / (g + 1.0),
                best_gflops: g,
            });
        }
        log
    }

    #[test]
    fn jsonl_round_trip() {
        let log = sample_log();
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let back = TuningLog::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn convergence_curve_matches_best() {
        let log = sample_log();
        assert_eq!(log.convergence_curve(), vec![0.0, 100.0, 200.0, 300.0, 400.0]);
        assert_eq!(log.best_gflops(), 400.0);
        assert_eq!(log.num_measured(), 5);
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(matches!(
            TuningLog::read_jsonl(&b""[..]),
            Err(ReadLogError::Empty)
        ));
    }

    #[test]
    fn malformed_line_is_an_error() {
        let data = b"{\"task_name\":\"t\",\"method\":\"m\"}\nnot json\n";
        assert!(matches!(
            TuningLog::read_jsonl(&data[..]),
            Err(ReadLogError::Parse(_))
        ));
    }
}

//! Tuning options shared by all methods.

use crate::bao::BaoOptions;
use crate::bted::BtedOptions;
use crate::sa::SaOptions;
use gbt::GbtParams;
use serde::{Deserialize, Serialize};

/// Options of one node-wise tuning run.
///
/// Defaults mirror the paper's experimental settings (Section V-A):
/// 64 initial points, early stopping at 400, BTED `(µ=0.1, M=500, m=64,
/// B=10)`, BAO `(η=0.05, Γ=2, τ=1.5, R=3)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuneOptions {
    /// Measurement budget per task.
    pub n_trial: usize,
    /// Stop when the best result has not improved for this many
    /// measurements (the paper sets 400).
    pub early_stopping: usize,
    /// Configurations measured per round (AutoTVM's measure batch).
    pub batch_size: usize,
    /// Initial configurations (random for AutoTVM, BTED for ours).
    pub init_points: usize,
    /// Candidates the model-guided search proposes per refit.
    pub plan_size: usize,
    /// ε-greedy random fraction of each planned batch.
    pub epsilon: f64,
    /// Cost-model (evaluation function) hyper-parameters.
    pub gbt: GbtParams,
    /// Evaluation-function hyper-parameters for BAO's per-step bootstrap
    /// fits (lighter than the batch-refit model: BAO trains 2·T models per
    /// task instead of ~16).
    pub bao_gbt: GbtParams,
    /// Simulated-annealing proposer settings (AutoTVM baseline).
    pub sa: SaOptions,
    /// BTED initialization settings.
    pub bted: BtedOptions,
    /// BAO iterative-optimization settings.
    pub bao: BaoOptions,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Retries allowed per transient measurement fault (`None` = the
    /// robust layer's default of 2). Optional so pre-robustness
    /// manifests still deserialize.
    pub max_retries: Option<u32>,
    /// Per-trial device-time budget in milliseconds (`None`/0 = no
    /// timeout).
    pub trial_timeout_ms: Option<f64>,
    /// Abort a task with a diagnostic once more than this fraction of
    /// its measured trials have failed (checked after
    /// [`TuneOptions::FAIL_RATE_MIN_TRIALS`] trials). `None` or `1.0`
    /// disables the cap: hard tasks naturally reject many configs.
    pub fail_rate_cap: Option<f64>,
    /// Record per-proposal model diagnostics (predicted mean/std,
    /// acquisition score) for `model_quality.jsonl` and `aaltune explain`.
    /// `None`/`false` disables capture at zero cost. Capture is pure —
    /// proposals and trial logs are byte-identical either way. Optional so
    /// pre-introspection manifests still deserialize.
    pub capture_model: Option<bool>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            n_trial: 1024,
            early_stopping: 400,
            batch_size: 64,
            init_points: 64,
            plan_size: 64,
            epsilon: 0.05,
            gbt: GbtParams::default(),
            bao_gbt: GbtParams { n_rounds: 35, colsample: 0.6, ..GbtParams::default() },
            sa: SaOptions::default(),
            bted: BtedOptions::default(),
            bao: BaoOptions::default(),
            seed: 0,
            max_retries: None,
            trial_timeout_ms: None,
            fail_rate_cap: None,
            capture_model: None,
        }
    }
}

impl TuneOptions {
    /// Trials measured before the fail-rate cap is consulted, so a noisy
    /// first batch cannot abort a task.
    pub const FAIL_RATE_MIN_TRIALS: usize = 48;

    /// The retry budget with the default applied.
    #[must_use]
    pub fn max_retries_or_default(&self) -> u32 {
        self.max_retries.unwrap_or(2)
    }

    /// The effective fail-rate cap (1.0 when disabled).
    #[must_use]
    pub fn fail_rate_cap_or_default(&self) -> f64 {
        self.fail_rate_cap.unwrap_or(1.0)
    }

    /// Whether model-introspection capture is on (off by default).
    #[must_use]
    pub fn capture_model_or_default(&self) -> bool {
        self.capture_model.unwrap_or(false)
    }

    /// A reduced-budget preset for unit tests and smoke benches.
    #[must_use]
    pub fn smoke() -> Self {
        TuneOptions {
            n_trial: 96,
            early_stopping: 96,
            batch_size: 16,
            init_points: 16,
            plan_size: 16,
            gbt: GbtParams { n_rounds: 20, ..GbtParams::default() },
            bao_gbt: GbtParams { n_rounds: 15, colsample: 0.6, ..GbtParams::default() },
            sa: SaOptions { parallel_size: 16, n_iter: 30, ..SaOptions::default() },
            bted: BtedOptions {
                batch_candidates: 64,
                num_selected: 16,
                num_batches: 3,
                ..BtedOptions::default()
            },
            ..TuneOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let o = TuneOptions::default();
        assert_eq!(o.init_points, 64);
        assert_eq!(o.early_stopping, 400);
        assert!((o.bted.mu - 0.1).abs() < 1e-12);
        assert_eq!(o.bted.batch_candidates, 500);
        assert_eq!(o.bted.num_selected, 64);
        assert_eq!(o.bted.num_batches, 10);
        assert!((o.bao.eta - 0.05).abs() < 1e-12);
        assert_eq!(o.bao.gamma, 2);
        assert!((o.bao.tau - 1.5).abs() < 1e-12);
        assert!((o.bao.radius - 3.0).abs() < 1e-12);
    }

    #[test]
    fn smoke_preset_is_smaller() {
        let s = TuneOptions::smoke();
        assert!(s.n_trial < TuneOptions::default().n_trial);
        assert!(s.bted.batch_candidates < 500);
    }
}

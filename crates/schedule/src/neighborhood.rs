//! Radius-based neighborhoods over configurations.
//!
//! BAO (Algorithm 4) restricts each optimization step to the neighborhood of
//! the incumbent with radius `R` (Euclidean, the paper sets `R = 3`), and
//! widens it when the relative improvement stalls. Two distance notions are
//! provided:
//!
//! * **Feature space** ([`feature_distance`], [`sample_feature_neighborhood`])
//!   — Euclidean distance between the log-scaled feature embeddings of
//!   Definition 1 ("deployment settings … encoded as the attributes of a
//!   feature vector"). One factor-of-2 tiling change moves a configuration
//!   √2 away, so `R = 3` spans one-to-two elementary schedule edits. This is
//!   the neighborhood BAO searches.
//! * **Choice coordinates** ([`distance`], [`sample_neighborhood`],
//!   [`enumerate_neighborhood`]) — distance between per-knob candidate
//!   indices; cheap, enumerable, used for diagnostics and tests.

use crate::feature::{features, sq_distance};
use crate::knob::{Knob, KnobValue};
use crate::space::{Config, ConfigSpace};
use rand::Rng;
use std::collections::HashSet;

/// Euclidean distance between two configurations in choice coordinates.
///
/// # Panics
///
/// Panics if the configurations come from spaces with different knob counts.
#[must_use]
pub fn distance(a: &Config, b: &Config) -> f64 {
    assert_eq!(a.choices.len(), b.choices.len(), "knob count mismatch");
    a.choices
        .iter()
        .zip(&b.choices)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Enumerates every configuration within `radius` of `center` (excluding
/// `center` itself). Exact but exponential in the knob count — intended for
/// small radii and for validating the sampler.
#[must_use]
pub fn enumerate_neighborhood(space: &ConfigSpace, center: &Config, radius: f64) -> Vec<Config> {
    let r2 = radius * radius;
    let dims: Vec<usize> = space.knobs().iter().map(|k| k.cardinality()).collect();
    let mut out = Vec::new();
    let mut cur = vec![0usize; dims.len()];
    fn rec(
        dim: usize,
        budget: f64,
        center: &[usize],
        dims: &[usize],
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if dim == dims.len() {
            out.push(cur.clone());
            return;
        }
        let c = center[dim] as i64;
        let max_off = budget.sqrt().floor() as i64;
        for off in -max_off..=max_off {
            let v = c + off;
            if v < 0 || v >= dims[dim] as i64 {
                continue;
            }
            let used = (off * off) as f64;
            cur[dim] = v as usize;
            rec(dim + 1, budget - used, center, dims, cur, out);
        }
        cur[dim] = center[dim];
    }
    let mut raw = Vec::new();
    rec(0, r2, &center.choices, &dims, &mut cur, &mut raw);
    for choices in raw {
        if choices == center.choices {
            continue;
        }
        let index = space.index_of(&choices);
        out.push(Config { index, choices });
    }
    out
}

/// Samples up to `n` distinct configurations within `radius` of `center`
/// (excluding `center`) by rejection sampling.
///
/// Attempts are capped, so for tiny neighborhoods fewer than `n`
/// configurations may be returned; callers treat the result as the search
/// scope `C` of Algorithm 3.
pub fn sample_neighborhood<R: Rng + ?Sized>(
    space: &ConfigSpace,
    center: &Config,
    radius: f64,
    n: usize,
    rng: &mut R,
) -> Vec<Config> {
    let r2 = radius * radius;
    let reach = radius.floor() as i64;
    let dims: Vec<i64> = space.knobs().iter().map(|k| k.cardinality() as i64).collect();
    let mut seen: HashSet<u64> = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    // Rejection sampling from the bounding box; the acceptance rate of an
    // L2 ball in <=8 dims is >1%, so the attempt cap is generous.
    let max_attempts = n.saturating_mul(200).max(20_000);
    let mut choices = vec![0usize; dims.len()];
    for _ in 0..max_attempts {
        if out.len() >= n {
            break;
        }
        let mut norm2 = 0.0;
        let mut in_bounds = true;
        let mut all_zero = true;
        for (d, &card) in dims.iter().enumerate() {
            let off = rng.gen_range(-reach..=reach);
            let v = center.choices[d] as i64 + off;
            if v < 0 || v >= card {
                in_bounds = false;
                break;
            }
            if off != 0 {
                all_zero = false;
            }
            norm2 += (off * off) as f64;
            choices[d] = v as usize;
        }
        if !in_bounds || all_zero || norm2 > r2 {
            continue;
        }
        let index = space.index_of(&choices);
        if seen.insert(index) {
            out.push(Config { index, choices: choices.clone() });
        }
    }
    out
}

/// Euclidean distance between two configurations **in feature space** (the
/// log-scaled embedding of [`crate::feature::features`]) — the paper's
/// Definition 1 treats a configuration as its feature vector, so this is
/// the distance its radius `R = 3` refers to.
#[must_use]
pub fn feature_distance(space: &ConfigSpace, a: &Config, b: &Config) -> f64 {
    sq_distance(&features(space, a), &features(space, b)).sqrt()
}

/// One elementary schedule move applied in place to `choices`. Returns
/// `false` if the chosen knob admits no move.
///
/// * Split knobs: move one prime factor between two output slots — the
///   smallest semantically meaningful schedule change (`√2·log2(p)` apart
///   in feature space for a factor `p`).
/// * Choice knobs: step to an adjacent candidate.
fn elementary_move<R: Rng + ?Sized>(
    space: &ConfigSpace,
    choices: &mut [usize],
    rng: &mut R,
) -> bool {
    let k = rng.gen_range(0..choices.len());
    match &space.knobs()[k] {
        Knob::Split { candidates, num_outputs, .. } => {
            let KnobValue::Split(mut factors) = space.knobs()[k].value(choices[k]) else {
                unreachable!("split knob yields split value")
            };
            let n = *num_outputs;
            // Pick a donor slot with a divisible factor and a receiver slot.
            let from = rng.gen_range(0..n);
            let to = (from + rng.gen_range(1..n)) % n;
            let f = factors[from];
            if f == 1 {
                return false;
            }
            // Smallest prime factor keeps the move minimal.
            // aal-lint: allow(unwrap, reason = "every integer greater than 1 has a prime factor")
            let p = (2..).find(|d| f % d == 0).expect("f > 1 has a prime factor");
            factors[from] /= p;
            factors[to] *= p;
            // Candidates are enumerated in lexicographic order, so the
            // mutated factor tuple is found by binary search.
            let Ok(pos) = candidates.binary_search(&factors) else {
                return false;
            };
            choices[k] = pos;
            true
        }
        Knob::Choice { values, .. } => {
            if values.len() < 2 {
                return false;
            }
            let c = choices[k];
            let next = if c == 0 {
                1
            } else if c == values.len() - 1 || rng.gen_bool(0.5) {
                c - 1
            } else {
                c + 1
            };
            choices[k] = next;
            true
        }
    }
}

/// Samples up to `n` distinct configurations within feature-space `radius`
/// of `center` (excluding `center`), by composing elementary schedule moves
/// and rejecting compositions that leave the radius.
///
/// This is the search-scope generator BAO uses: it yields *semantically*
/// local schedules (nearby tilings, one-step unroll changes) rather than
/// nearby candidate indices.
pub fn sample_feature_neighborhood<R: Rng + ?Sized>(
    space: &ConfigSpace,
    center: &Config,
    radius: f64,
    n: usize,
    rng: &mut R,
) -> Vec<Config> {
    let center_feat = features(space, center);
    let r2 = radius * radius;
    // Each factor-of-2 move displaces about sqrt(2); allow some slack so
    // move chains can cancel.
    let max_moves = ((radius / std::f64::consts::SQRT_2).ceil() as usize + 1).max(2);
    let mut seen: HashSet<u64> = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    // Small radii induce small neighborhoods; a modest attempt cap keeps
    // the per-step cost bounded (BS works fine on a partial scope).
    let max_attempts = n.saturating_mul(8).max(1024);
    for _ in 0..max_attempts {
        if out.len() >= n {
            break;
        }
        let mut choices = center.choices.clone();
        let moves = rng.gen_range(1..=max_moves);
        let mut moved = false;
        for _ in 0..moves {
            moved |= elementary_move(space, &mut choices, rng);
        }
        if !moved || choices == center.choices {
            continue;
        }
        let index = space.index_of(&choices);
        if seen.contains(&index) {
            continue;
        }
        let cand = Config { index, choices };
        if sq_distance(&center_feat, &features(space, &cand)) > r2 {
            continue;
        }
        seen.insert(index);
        out.push(cand);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::Knob;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(
            "t",
            vec![
                Knob::split("a", 64, 2), // 7 candidates
                Knob::split("b", 64, 2), // 7 candidates
                Knob::choice("c", vec![0, 1, 2, 3, 4]),
            ],
        )
    }

    #[test]
    fn distance_is_euclidean_in_choice_space() {
        let s = space();
        let a = s.config(0).unwrap();
        let b = s.config(1).unwrap(); // differs by 1 in knob 0
        assert!((distance(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn enumeration_respects_radius_and_excludes_center() {
        let s = space();
        let center = s.config(s.len() / 2).unwrap();
        let hood = enumerate_neighborhood(&s, &center, 2.0);
        assert!(!hood.is_empty());
        for cfg in &hood {
            assert!(distance(&center, cfg) <= 2.0 + 1e-12);
            assert_ne!(cfg.index, center.index);
        }
    }

    #[test]
    fn sampler_is_subset_of_enumeration() {
        let s = space();
        let center = s.config(s.len() / 2).unwrap();
        let exact: HashSet<u64> =
            enumerate_neighborhood(&s, &center, 3.0).iter().map(|c| c.index).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sampled = sample_neighborhood(&s, &center, 3.0, 500, &mut rng);
        assert!(!sampled.is_empty());
        for cfg in &sampled {
            assert!(exact.contains(&cfg.index), "sampled {} not in ball", cfg.index);
        }
    }

    #[test]
    fn sampler_saturates_small_neighborhoods() {
        let s = space();
        let center = s.config(s.len() / 2).unwrap();
        let exact = enumerate_neighborhood(&s, &center, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let sampled = sample_neighborhood(&s, &center, 1.0, 500, &mut rng);
        // Radius-1 ball = one step along each axis; the sampler should find
        // every member.
        assert_eq!(sampled.len(), exact.len());
    }

    #[test]
    fn feature_neighborhood_respects_radius() {
        let s = space();
        let center = s.config(s.len() / 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let hood = sample_feature_neighborhood(&s, &center, 3.0, 200, &mut rng);
        assert!(!hood.is_empty());
        for cfg in &hood {
            let d = feature_distance(&s, &center, cfg);
            assert!(d <= 3.0 + 1e-9, "distance {d} exceeds radius");
            assert_ne!(cfg.index, center.index);
        }
    }

    #[test]
    fn feature_neighborhood_members_are_semantically_close() {
        // A single factor-of-2 shift is sqrt(2) away, so two split-knob
        // changes (2*sqrt(2) ≈ 2.83) cannot fit inside radius 1.5; cheap
        // choice-knob steps may ride along.
        let s = space();
        let center = s.config(s.len() / 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for cfg in sample_feature_neighborhood(&s, &center, 1.5, 100, &mut rng) {
            let split_diffs = cfg
                .choices
                .iter()
                .zip(&center.choices)
                .zip(s.knobs())
                .filter(|((a, b), k)| a != b && matches!(k, Knob::Split { .. }))
                .count();
            assert!(split_diffs <= 1, "radius-1.5 member changed {split_diffs} split knobs");
        }
    }

    #[test]
    fn elementary_move_preserves_split_products() {
        let s = space();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let center = s.config(s.len() / 2).unwrap();
        for _ in 0..100 {
            let mut choices = center.choices.clone();
            if elementary_move(&s, &mut choices, &mut rng) {
                // Decoding must succeed: product invariant held.
                let idx = s.index_of(&choices);
                assert!(s.config(idx).is_ok());
            }
        }
    }

    #[test]
    fn corner_center_clips_to_bounds() {
        let s = space();
        let center = s.config(0).unwrap(); // all-zero choices
        let hood = enumerate_neighborhood(&s, &center, 3.0);
        for cfg in &hood {
            for (&c, k) in cfg.choices.iter().zip(s.knobs()) {
                assert!(c < k.cardinality());
            }
        }
    }
}

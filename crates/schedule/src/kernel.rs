//! Lowering: configuration → concrete kernel launch.
//!
//! Reproduces what TVM's schedule application + codegen do for the direct
//! CUDA templates: compute the grid/block geometry, per-thread register
//! pressure, shared-memory tiles, global-memory traffic (with halo and
//! re-read redundancy), coalescing and bank-conflict characteristics, and
//! unrolling ILP. The result, [`KernelSpec`], is everything the GPU
//! performance model (`gpu-sim`) needs to predict the launch.
//!
//! Lowering also performs the *validity checks* a real launch would fail:
//! too many threads per block, shared-memory overflow, or register
//! exhaustion return a [`ScheduleError`] — AutoTVM records such configs as
//! failed measurements, and our tuners do the same.

use crate::error::ScheduleError;
use crate::knob::KnobValue;
use crate::space::{Config, ConfigSpace};
use dnn_graph::task::{TuningTask, Workload};
use dnn_graph::TaskKind;
use serde::{Deserialize, Serialize};

/// CUDA architectural limits that are device-independent in this era of
/// hardware (Pascal/Volta/Turing).
pub mod limits {
    /// Maximum threads per block.
    pub const MAX_THREADS_PER_BLOCK: usize = 1024;
    /// Maximum static shared memory per block in bytes.
    pub const MAX_SMEM_PER_BLOCK: usize = 48 * 1024;
    /// Maximum registers per thread.
    pub const MAX_REGS_PER_THREAD: usize = 255;
}

/// A fully-lowered kernel launch: geometry, resources and traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Task name this kernel implements.
    pub task_name: String,
    /// Total thread blocks in the grid.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Virtual threads (TVM `vthread`) multiplying per-thread state.
    pub vthreads: usize,
    /// Estimated registers per thread.
    pub regs_per_thread: usize,
    /// Static shared memory per block in bytes.
    pub smem_bytes_per_block: usize,
    /// Floating-point operations of the whole kernel.
    pub flops: u64,
    /// Global-memory bytes read (including tile re-reads and halos).
    pub gmem_read_bytes: u64,
    /// Global-memory bytes written.
    pub gmem_write_bytes: u64,
    /// Read coalescing efficiency in `(0, 1]`.
    pub read_coalesce_eff: f64,
    /// Write coalescing efficiency in `(0, 1]`.
    pub write_coalesce_eff: f64,
    /// Shared-memory bank-conflict slowdown (`>= 1`).
    pub bank_conflict_factor: f64,
    /// Instruction-level-parallelism factor from unrolling (`>= 1`).
    pub unroll_ilp: f64,
    /// Output elements computed by each thread.
    pub outputs_per_thread: usize,
    /// Size of the innermost loop body in MACs (unrolling granularity).
    pub inner_loop_size: usize,
}

impl KernelSpec {
    /// Arithmetic intensity in flops per global-memory byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops as f64 / (self.gmem_read_bytes + self.gmem_write_bytes).max(1) as f64
    }
}

const BYTES: u64 = 4; // fp32

/// Coalescing efficiency of reading rows of `row_elems` consecutive floats:
/// fraction of each 128-byte (32-float) transaction that is useful.
fn row_coalesce_eff(row_elems: usize) -> f64 {
    let row = row_elems.max(1) as f64;
    let tx = (row / 32.0).ceil() * 32.0;
    row / tx
}

/// Write-coalescing efficiency when each thread writes `per_thread` elements
/// at stride `stride` (threads interleave).
fn write_eff(per_thread: usize, stride: usize) -> f64 {
    if per_thread <= 1 || stride <= 1 {
        1.0
    } else {
        // Strided per-thread writes break transactions; degrade smoothly.
        1.0 / (1.0 + 0.2 * ((per_thread.min(16) - 1) as f64))
    }
}

/// Bank-conflict slowdown for shared loads at element stride `stride`.
fn bank_conflicts(stride: usize) -> f64 {
    let g = gcd(stride.max(1), 32);
    1.0 + 0.25 * (g as f64 - 1.0)
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// ILP factor from the unrolling knobs.
fn unroll_ilp(auto_unroll_max_step: i64, explicit: i64, inner_loop: usize) -> f64 {
    if auto_unroll_max_step == 0 {
        return 1.0;
    }
    if inner_loop as i64 > auto_unroll_max_step {
        // Loop too large to unroll: slight bookkeeping overhead only.
        return 0.98;
    }
    // Unrolled: ILP grows with body size up to a point, explicit unrolling
    // squeezes a bit more out of small bodies but bloats large ones.
    let body = inner_loop as f64;
    let base = 1.0 + 0.35 * (body.ln() / (body.ln() + 3.0));
    if explicit != 0 {
        if body <= 256.0 {
            base * 1.05
        } else {
            base * 0.97
        }
    } else {
        base
    }
}

fn split4(space: &ConfigSpace, cfg: &Config, name: &str) -> [usize; 4] {
    match space.value_of(cfg, name) {
        Some(KnobValue::Split(f)) if f.len() == 4 => [f[0], f[1], f[2], f[3]],
        other => unreachable!("expected 4-way split `{name}`, got {other:?}"),
    }
}

fn split2(space: &ConfigSpace, cfg: &Config, name: &str) -> [usize; 2] {
    match space.value_of(cfg, name) {
        Some(KnobValue::Split(f)) if f.len() == 2 => [f[0], f[1]],
        other => unreachable!("expected 2-way split `{name}`, got {other:?}"),
    }
}

fn choice(space: &ConfigSpace, cfg: &Config, name: &str) -> i64 {
    match space.value_of(cfg, name) {
        Some(KnobValue::Choice(v)) => v,
        other => unreachable!("expected choice `{name}`, got {other:?}"),
    }
}

fn validate(threads: usize, smem: usize, regs: usize) -> Result<(), ScheduleError> {
    if threads > limits::MAX_THREADS_PER_BLOCK {
        return Err(ScheduleError::InvalidThreadCount {
            threads,
            limit: limits::MAX_THREADS_PER_BLOCK,
        });
    }
    if smem > limits::MAX_SMEM_PER_BLOCK {
        return Err(ScheduleError::InvalidSharedMem {
            bytes: smem,
            limit: limits::MAX_SMEM_PER_BLOCK,
        });
    }
    if regs > limits::MAX_REGS_PER_THREAD {
        return Err(ScheduleError::InvalidRegisterCount {
            regs,
            limit: limits::MAX_REGS_PER_THREAD,
        });
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn lower_conv2d(
    task: &TuningTask,
    space: &ConfigSpace,
    cfg: &Config,
) -> Result<KernelSpec, ScheduleError> {
    let Workload::Conv2d { batch, in_channels, out_channels, kernel, stride, groups, .. } =
        task.workload
    else {
        unreachable!("conv lowering requires a conv workload")
    };
    // aal-lint: allow(unwrap, reason = "conv kernels run only on conv workloads, which have spatial dims")
    let (oh, ow) = task.workload.out_hw().expect("conv has spatial output");
    let rc = in_channels / groups;

    let [bf, vf, tf, fi] = split4(space, cfg, "tile_f");
    let [by, vy, ty, yi] = split4(space, cfg, "tile_y");
    let [bx, vx, tx, xi] = split4(space, cfg, "tile_x");
    let [_rco, rci] = split2(space, cfg, "tile_rc");
    let [_ryo, ryi] = split2(space, cfg, "tile_ry");
    let [_rxo, rxi] = split2(space, cfg, "tile_rx");
    let unroll_step = choice(space, cfg, "auto_unroll_max_step");
    let explicit = choice(space, cfg, "unroll_explicit");
    debug_assert_eq!(bf * vf * tf * fi, out_channels);
    debug_assert_eq!(by * vy * ty * yi, oh);
    debug_assert_eq!(bx * vx * tx * xi, ow);

    let grid_blocks = (batch * bf * by * bx) as u64;
    let threads = tf * ty * tx;
    let vthreads = vf * vy * vx;
    let outputs_per_thread = vthreads * fi * yi * xi;

    // Block-level output tile.
    let f_t = vf * tf * fi;
    let y_t = vy * ty * yi;
    let x_t = vx * tx * xi;

    // Shared-memory tiles cached per (rc, ry, rx) outer iteration.
    let in_span_y = (y_t - 1) * stride.0 + ryi;
    let in_span_x = (x_t - 1) * stride.1 + rxi;
    let smem_input = rci * in_span_y * in_span_x;
    let smem_weight = f_t * rci * ryi * rxi;
    let smem_bytes = (smem_input + smem_weight) * BYTES as usize;

    // Register estimate: accumulators (one per output element, virtual
    // threads multiply real state) + staging operands + addressing.
    let regs = 18 + outputs_per_thread + 2 * (fi + xi).min(64);

    validate(threads, smem_bytes, regs)?;

    // Global traffic. Input is re-read once per f-block; each spatial block
    // reads its halo'd tile for all rc channels and kernel taps covered by
    // outer reduction loops.
    let full_span_y = (y_t - 1) * stride.0 + kernel.0;
    let full_span_x = (x_t - 1) * stride.1 + kernel.1;
    let input_reads =
        (batch * bf) as u64 * (by * bx) as u64 * (rc * full_span_y * full_span_x) as u64;
    // Weights are re-read once per spatial block.
    let weight_elems = (out_channels * rc * kernel.0 * kernel.1) as u64;
    let weight_reads = weight_elems * (batch * by * bx) as u64;
    let gmem_read_bytes = (input_reads + weight_reads) * BYTES;
    let gmem_write_bytes = (batch * out_channels * oh * ow) as u64 * BYTES;

    let inner_loop_size = fi * yi * xi * rci * ryi * rxi;

    Ok(KernelSpec {
        task_name: task.name.clone(),
        grid_blocks,
        threads_per_block: threads,
        vthreads,
        regs_per_thread: regs,
        smem_bytes_per_block: smem_bytes,
        flops: task.flops(),
        gmem_read_bytes,
        gmem_write_bytes,
        read_coalesce_eff: row_coalesce_eff(in_span_x),
        write_coalesce_eff: write_eff(xi, tx),
        bank_conflict_factor: bank_conflicts(xi),
        unroll_ilp: unroll_ilp(unroll_step, explicit, inner_loop_size),
        outputs_per_thread,
        inner_loop_size,
    })
}

fn lower_depthwise(
    task: &TuningTask,
    space: &ConfigSpace,
    cfg: &Config,
) -> Result<KernelSpec, ScheduleError> {
    let Workload::Conv2d { batch, out_channels, kernel, stride, .. } = task.workload else {
        unreachable!("depthwise lowering requires a conv workload")
    };
    // aal-lint: allow(unwrap, reason = "conv kernels run only on conv workloads, which have spatial dims")
    let (oh, ow) = task.workload.out_hw().expect("conv has spatial output");

    let [bc, vc, tc, ci] = split4(space, cfg, "tile_c");
    let [by, vy, ty, yi] = split4(space, cfg, "tile_y");
    let [bx, vx, tx, xi] = split4(space, cfg, "tile_x");
    let [_ryo, ryi] = split2(space, cfg, "tile_ry");
    let [_rxo, rxi] = split2(space, cfg, "tile_rx");
    let unroll_step = choice(space, cfg, "auto_unroll_max_step");
    let explicit = choice(space, cfg, "unroll_explicit");
    debug_assert_eq!(bc * vc * tc * ci, out_channels);

    let grid_blocks = (batch * bc * by * bx) as u64;
    let threads = tc * ty * tx;
    let vthreads = vc * vy * vx;
    let outputs_per_thread = vthreads * ci * yi * xi;

    let c_t = vc * tc * ci;
    let y_t = vy * ty * yi;
    let x_t = vx * tx * xi;

    let in_span_y = (y_t - 1) * stride.0 + ryi;
    let in_span_x = (x_t - 1) * stride.1 + rxi;
    let smem_input = c_t * in_span_y * in_span_x;
    let smem_weight = c_t * ryi * rxi;
    let smem_bytes = (smem_input + smem_weight) * BYTES as usize;

    let regs = 16 + outputs_per_thread + 2 * (ci + xi).min(64);
    validate(threads, smem_bytes, regs)?;

    // Depth-wise input is read once per covering block (no cross-channel
    // reduction, so no f-block redundancy), with spatial halo.
    let full_span_y = (y_t - 1) * stride.0 + kernel.0;
    let full_span_x = (x_t - 1) * stride.1 + kernel.1;
    // Every block reads the halo'd tile for each of its c_t channels:
    // blocks (batch*bc*by*bx) x per-block (c_t * span_y * span_x).
    let input_reads = (batch * by * bx * out_channels) as u64 * (full_span_y * full_span_x) as u64;
    let weight_reads = (out_channels * kernel.0 * kernel.1) as u64 * (batch * by * bx) as u64;
    let gmem_read_bytes = (input_reads + weight_reads) * BYTES;
    let gmem_write_bytes = (batch * out_channels * oh * ow) as u64 * BYTES;

    let inner_loop_size = ci * yi * xi * ryi * rxi;

    Ok(KernelSpec {
        task_name: task.name.clone(),
        grid_blocks,
        threads_per_block: threads,
        vthreads,
        regs_per_thread: regs,
        smem_bytes_per_block: smem_bytes,
        flops: task.flops(),
        gmem_read_bytes,
        gmem_write_bytes,
        read_coalesce_eff: row_coalesce_eff(in_span_x),
        write_coalesce_eff: write_eff(xi, tx),
        bank_conflict_factor: bank_conflicts(xi),
        unroll_ilp: unroll_ilp(unroll_step, explicit, inner_loop_size),
        outputs_per_thread,
        inner_loop_size,
    })
}

fn lower_dense(
    task: &TuningTask,
    space: &ConfigSpace,
    cfg: &Config,
) -> Result<KernelSpec, ScheduleError> {
    let Workload::Dense { batch, in_features, out_features } = task.workload else {
        unreachable!("dense lowering requires a dense workload")
    };
    let [byo, yi] = split2(space, cfg, "tile_y");
    let [bx, vx, tx, xi] = split4(space, cfg, "tile_x");
    let [_ko, ki] = split2(space, cfg, "tile_k");
    let unroll_step = choice(space, cfg, "auto_unroll_max_step");
    let explicit = choice(space, cfg, "unroll_explicit");

    let grid_blocks = (byo * bx) as u64;
    let threads = tx;
    let vthreads = vx;
    let outputs_per_thread = vx * xi * yi;
    let x_t = vx * tx * xi;

    let smem_bytes = (ki * (x_t + yi)) * BYTES as usize;
    let regs = 16 + outputs_per_thread + 2 * xi.min(64);
    validate(threads, smem_bytes, regs)?;

    let input_reads = (byo * yi) as u64 * in_features as u64 * bx as u64;
    let weight_reads = (out_features * in_features) as u64 * byo as u64;
    let gmem_read_bytes = (input_reads + weight_reads) * BYTES;
    let gmem_write_bytes = (batch * out_features) as u64 * BYTES;

    let inner_loop_size = xi * yi * ki;

    Ok(KernelSpec {
        task_name: task.name.clone(),
        grid_blocks,
        threads_per_block: threads,
        vthreads,
        regs_per_thread: regs,
        smem_bytes_per_block: smem_bytes,
        flops: task.flops(),
        gmem_read_bytes,
        gmem_write_bytes,
        read_coalesce_eff: row_coalesce_eff(ki),
        write_coalesce_eff: write_eff(xi, tx),
        bank_conflict_factor: bank_conflicts(xi),
        unroll_ilp: unroll_ilp(unroll_step, explicit, inner_loop_size),
        outputs_per_thread,
        inner_loop_size,
    })
}

/// Lowers `cfg` (a point of `space`) for `task` into a [`KernelSpec`].
///
/// # Example
///
/// ```
/// use dnn_graph::{models, task::extract_tasks};
/// use schedule::{kernel::lower, template::space_for_task};
///
/// let task = extract_tasks(&models::mobilenet_v1(1)).remove(0);
/// let space = space_for_task(&task);
/// let cfg = space.config(12345)?;
/// if let Ok(spec) = lower(&task, &space, &cfg) {
///     assert_eq!(spec.flops, task.flops());
///     assert!(spec.threads_per_block <= 1024);
/// } // Err(_) means the launch would fail on device — tuners record it.
/// # Ok::<(), schedule::ScheduleError>(())
/// ```
///
/// # Errors
///
/// Returns a [`ScheduleError`] when the configuration would fail to launch
/// (thread, shared-memory or register limits).
pub fn lower(
    task: &TuningTask,
    space: &ConfigSpace,
    cfg: &Config,
) -> Result<KernelSpec, ScheduleError> {
    match task.kind {
        TaskKind::Conv2d => lower_conv2d(task, space, cfg),
        TaskKind::DepthwiseConv2d => lower_depthwise(task, space, cfg),
        TaskKind::Dense => lower_dense(task, space, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::space_for_task;
    use dnn_graph::{models, task::extract_tasks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn first_task(model: &dnn_graph::Graph) -> TuningTask {
        extract_tasks(model).remove(0)
    }

    #[test]
    fn lowered_flops_match_workload() {
        let task = first_task(&models::mobilenet_v1(1));
        let space = space_for_task(&task);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let cfg = space.sample(&mut rng);
            if let Ok(spec) = lower(&task, &space, &cfg) {
                assert_eq!(spec.flops, task.flops());
            }
        }
    }

    #[test]
    fn some_configs_are_invalid_and_some_valid() {
        // The paper's setting relies on the space containing both launchable
        // and unlaunchable points.
        let task = first_task(&models::vgg16(1));
        let space = space_for_task(&task);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ok = 0;
        let mut bad = 0;
        for _ in 0..300 {
            let cfg = space.sample(&mut rng);
            match lower(&task, &space, &cfg) {
                Ok(_) => ok += 1,
                Err(_) => bad += 1,
            }
        }
        assert!(ok > 0, "no valid configs found");
        assert!(bad > 0, "no invalid configs found");
    }

    #[test]
    fn thread_limit_enforced() {
        let task = first_task(&models::vgg16(1));
        let space = space_for_task(&task);
        // Build a config with tf=ty=tx as large as possible: find the
        // candidate (1, 1, extent, 1) for each 4-way split.
        let mut choices = vec![0usize; space.num_knobs()];
        for (i, knob) in space.knobs().iter().enumerate() {
            if let crate::knob::Knob::Split { candidates, extent, num_outputs: 4, .. } = knob {
                if ["tile_f", "tile_y", "tile_x"].contains(&knob.name()) {
                    let want = vec![1, 1, *extent, 1];
                    choices[i] =
                        candidates.iter().position(|c| *c == want).expect("candidate exists");
                }
            }
        }
        let cfg = Config { index: space.index_of(&choices), choices };
        let err = lower(&task, &space, &cfg).unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidThreadCount { .. }));
    }

    #[test]
    fn write_eff_and_bank_conflicts_behave() {
        assert_eq!(write_eff(1, 7), 1.0);
        assert!(write_eff(8, 4) < 1.0);
        assert_eq!(bank_conflicts(1), 1.0);
        assert!(bank_conflicts(16) > bank_conflicts(2));
        assert_eq!(bank_conflicts(3), 1.0); // odd strides conflict-free
    }

    #[test]
    fn unroll_ilp_monotone_regions() {
        assert_eq!(unroll_ilp(0, 0, 100), 1.0);
        assert!(unroll_ilp(512, 0, 64) > 1.0);
        assert!(unroll_ilp(512, 0, 5000) < 1.0); // too big to unroll
        assert!(unroll_ilp(1500, 1, 64) > unroll_ilp(1500, 0, 64));
    }

    #[test]
    fn dense_lowering_works() {
        let tasks = dnn_graph::task::extract_tasks_with_dense(&models::alexnet(1));
        let dense = tasks.into_iter().find(|t| t.kind == TaskKind::Dense).unwrap();
        let space = space_for_task(&dense);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ok = 0;
        for _ in 0..100 {
            let cfg = space.sample(&mut rng);
            if lower(&dense, &space, &cfg).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 0);
    }
}

//! Tuning knobs: the dimensions of a configuration space.

use crate::factorization::ordered_factorizations;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One tunable dimension of a schedule template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Knob {
    /// An axis split: candidates are every ordered factorization of the axis
    /// extent into `num_outputs` parts (AutoTVM `define_split`).
    Split {
        /// Knob name, e.g. `"tile_f"`.
        name: String,
        /// Extent of the split axis.
        extent: usize,
        /// Number of split outputs.
        num_outputs: usize,
        /// Enumerated candidates (each of length `num_outputs`, product =
        /// `extent`), lexicographically ordered.
        candidates: Vec<Vec<usize>>,
    },
    /// A categorical choice (AutoTVM `define_knob`).
    Choice {
        /// Knob name, e.g. `"auto_unroll_max_step"`.
        name: String,
        /// The candidate values.
        values: Vec<i64>,
    },
}

impl Knob {
    /// Creates a split knob over an axis of `extent` with `num_outputs`
    /// parts.
    ///
    /// # Panics
    ///
    /// Panics if `extent == 0` or `num_outputs == 0`.
    #[must_use]
    pub fn split(name: impl Into<String>, extent: usize, num_outputs: usize) -> Self {
        Knob::Split {
            name: name.into(),
            extent,
            num_outputs,
            candidates: ordered_factorizations(extent, num_outputs),
        }
    }

    /// Creates a categorical knob.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn choice(name: impl Into<String>, values: Vec<i64>) -> Self {
        assert!(!values.is_empty(), "choice knob needs at least one value");
        Knob::Choice { name: name.into(), values }
    }

    /// Knob name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Knob::Split { name, .. } | Knob::Choice { name, .. } => name,
        }
    }

    /// Number of candidate values.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        match self {
            Knob::Split { candidates, .. } => candidates.len(),
            Knob::Choice { values, .. } => values.len(),
        }
    }

    /// The concrete value at candidate position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.cardinality()`.
    #[must_use]
    pub fn value(&self, idx: usize) -> KnobValue {
        match self {
            Knob::Split { candidates, .. } => KnobValue::Split(candidates[idx].clone()),
            Knob::Choice { values, .. } => KnobValue::Choice(values[idx]),
        }
    }
}

impl fmt::Display for Knob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Knob::Split { name, extent, num_outputs, candidates } => write!(
                f,
                "{name}: split({extent} -> {num_outputs} parts, {} candidates)",
                candidates.len()
            ),
            Knob::Choice { name, values } => write!(f, "{name}: choice{values:?}"),
        }
    }
}

/// A concrete value taken by one knob inside a configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KnobValue {
    /// Chosen split factors (length = the knob's `num_outputs`).
    Split(Vec<usize>),
    /// Chosen categorical value.
    Choice(i64),
}

impl KnobValue {
    /// The split factors, if this is a split value.
    #[must_use]
    pub fn as_split(&self) -> Option<&[usize]> {
        match self {
            KnobValue::Split(fs) => Some(fs),
            KnobValue::Choice(_) => None,
        }
    }

    /// The categorical value, if this is a choice value.
    #[must_use]
    pub fn as_choice(&self) -> Option<i64> {
        match self {
            KnobValue::Choice(v) => Some(*v),
            KnobValue::Split(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_knob_enumerates_factorizations() {
        let k = Knob::split("tile_f", 8, 2);
        assert_eq!(k.cardinality(), 4); // (1,8) (2,4) (4,2) (8,1)
        assert_eq!(k.value(1), KnobValue::Split(vec![2, 4]));
    }

    #[test]
    fn choice_knob_values() {
        let k = Knob::choice("unroll", vec![0, 512, 1500]);
        assert_eq!(k.cardinality(), 3);
        assert_eq!(k.value(2).as_choice(), Some(1500));
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(Knob::split("a", 4, 2).name(), "a");
        assert_eq!(Knob::choice("b", vec![1]).name(), "b");
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_choice_panics() {
        let _ = Knob::choice("bad", vec![]);
    }
}

//! Schedule templates: task → configuration space.
//!
//! Mirrors TVM v0.6's CUDA templates:
//!
//! * **direct conv2d** — 4-way splits of the output channel (`tile_f`) and
//!   spatial axes (`tile_y`, `tile_x`) into block / virtual-thread / thread /
//!   inner parts, 2-way splits of the reduction axes (`tile_rc`, `tile_ry`,
//!   `tile_rx`), `auto_unroll_max_step ∈ {0, 512, 1500}` and
//!   `unroll_explicit ∈ {0, 1}`.
//! * **depth-wise conv2d** — same spatial structure with the channel axis as
//!   `tile_c` and only `tile_ry`/`tile_rx` reductions.
//! * **dense** — 2-way batch and 4-way output-feature splits plus a 2-way
//!   reduction split.

use crate::knob::Knob;
use crate::space::ConfigSpace;
use dnn_graph::task::{TuningTask, Workload};

/// Unroll-step candidates used by TVM's CUDA conv templates.
pub const UNROLL_STEPS: [i64; 3] = [0, 512, 1500];

/// Builds the direct conv2d space.
fn conv2d_space(task: &TuningTask) -> ConfigSpace {
    let Workload::Conv2d { out_channels, in_channels, kernel, groups, .. } = task.workload else {
        unreachable!("conv2d template requires a conv workload")
    };
    // aal-lint: allow(unwrap, reason = "conv templates run only on conv workloads, which have spatial dims")
    let (oh, ow) = task.workload.out_hw().expect("conv has spatial output");
    let rc = in_channels / groups;
    ConfigSpace::new(
        task.name.clone(),
        vec![
            Knob::split("tile_f", out_channels, 4),
            Knob::split("tile_y", oh, 4),
            Knob::split("tile_x", ow, 4),
            Knob::split("tile_rc", rc, 2),
            Knob::split("tile_ry", kernel.0, 2),
            Knob::split("tile_rx", kernel.1, 2),
            Knob::choice("auto_unroll_max_step", UNROLL_STEPS.to_vec()),
            Knob::choice("unroll_explicit", vec![0, 1]),
        ],
    )
}

/// Builds the depth-wise conv2d space.
fn depthwise_space(task: &TuningTask) -> ConfigSpace {
    let Workload::Conv2d { out_channels, kernel, .. } = task.workload else {
        unreachable!("depthwise template requires a conv workload")
    };
    // aal-lint: allow(unwrap, reason = "conv templates run only on conv workloads, which have spatial dims")
    let (oh, ow) = task.workload.out_hw().expect("conv has spatial output");
    ConfigSpace::new(
        task.name.clone(),
        vec![
            Knob::split("tile_c", out_channels, 4),
            Knob::split("tile_y", oh, 4),
            Knob::split("tile_x", ow, 4),
            Knob::split("tile_ry", kernel.0, 2),
            Knob::split("tile_rx", kernel.1, 2),
            Knob::choice("auto_unroll_max_step", UNROLL_STEPS.to_vec()),
            Knob::choice("unroll_explicit", vec![0, 1]),
        ],
    )
}

/// Builds the dense space.
fn dense_space(task: &TuningTask) -> ConfigSpace {
    let Workload::Dense { batch, in_features, out_features } = task.workload else {
        unreachable!("dense template requires a dense workload")
    };
    ConfigSpace::new(
        task.name.clone(),
        vec![
            Knob::split("tile_y", batch, 2),
            Knob::split("tile_x", out_features, 4),
            Knob::split("tile_k", in_features, 2),
            Knob::choice("auto_unroll_max_step", UNROLL_STEPS.to_vec()),
            Knob::choice("unroll_explicit", vec![0, 1]),
        ],
    )
}

/// Builds the configuration space of a tuning task.
///
/// # Example
///
/// ```
/// use dnn_graph::{models, task::extract_tasks};
/// use schedule::template::space_for_task;
///
/// let tasks = extract_tasks(&models::mobilenet_v1(1));
/// let space = space_for_task(&tasks[0]);
/// assert!(space.len() > 1_000_000);
/// ```
#[must_use]
pub fn space_for_task(task: &TuningTask) -> ConfigSpace {
    match task.kind {
        dnn_graph::TaskKind::Conv2d => conv2d_space(task),
        dnn_graph::TaskKind::DepthwiseConv2d => depthwise_space(task),
        dnn_graph::TaskKind::Dense => dense_space(task),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{models, task::extract_tasks};

    #[test]
    fn vgg_first_node_is_point_two_billion() {
        // Section I: "the first optimization node in VGG-16 has approximately
        // 0.2 billion configuration points". Our template reproduces it.
        let task = extract_tasks(&models::vgg16(1)).remove(0);
        let space = space_for_task(&task);
        assert_eq!(space.len(), 202_309_632);
    }

    #[test]
    fn average_mobilenet_node_exceeds_fifty_million() {
        // Section V: "on average, each node has more than 50 million
        // configuration points".
        let tasks = extract_tasks(&models::mobilenet_v1(1));
        let mean =
            tasks.iter().map(|t| space_for_task(t).len() as f64).sum::<f64>() / tasks.len() as f64;
        assert!(mean > 5e6, "mean space size {mean}");
    }

    #[test]
    fn every_paper_task_has_a_space() {
        for model in models::paper_models(1) {
            for task in extract_tasks(&model) {
                let space = space_for_task(&task);
                assert!(space.len() > 1, "{}", task.name);
                // Spot-check the codec at the extremes.
                let last = space.len() - 1;
                let cfg = space.config(last).unwrap();
                assert_eq!(space.index_of(&cfg.choices), last);
            }
        }
    }

    #[test]
    fn dense_template_builds() {
        let tasks = dnn_graph::task::extract_tasks_with_dense(&models::alexnet(1));
        let dense = tasks.iter().find(|t| t.kind == dnn_graph::TaskKind::Dense).unwrap();
        let space = space_for_task(dense);
        assert!(space.len() > 100);
        assert_eq!(space.knobs()[0].name(), "tile_y");
    }
}

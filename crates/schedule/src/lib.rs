//! Schedule configuration spaces for DNN kernel auto-tuning.
//!
//! This crate rebuilds AutoTVM's per-node *design space* layer: for every
//! tuning task it defines the deployment-configuration space the paper
//! searches (Definition 1), provides an index↔configuration codec, feature
//! vectors for the evaluation function and for TED's kernel matrix, radius
//! `R` neighborhoods for BAO's adaptive search scope, and a lowering pass
//! that turns a configuration into a concrete GPU kernel launch
//! ([`kernel::KernelSpec`]) with its resource footprint.
//!
//! The templates mirror TVM v0.6's CUDA schedules: the direct conv2d
//! template splits each output axis four ways (block / virtual-thread /
//! thread / inner) and each reduction axis two ways, plus two unrolling
//! knobs — which is exactly why the first VGG-16 node has ≈0.2 billion
//! points, the figure the paper quotes.
//!
//! # Example
//!
//! ```
//! use dnn_graph::{models, task::extract_tasks};
//! use schedule::template::space_for_task;
//!
//! let task = extract_tasks(&models::vgg16(1)).remove(0);
//! let space = space_for_task(&task);
//! assert!(space.len() > 200_000_000); // "approximately 0.2 billion"
//! ```

pub mod error;
pub mod factorization;
pub mod feature;
pub mod kernel;
pub mod knob;
pub mod neighborhood;
pub mod space;
pub mod template;

pub use error::ScheduleError;
pub use kernel::KernelSpec;
pub use knob::{Knob, KnobValue};
pub use space::{Config, ConfigSpace};
pub use template::space_for_task;

//! The configuration space of one tuning task.

use crate::error::ScheduleError;
use crate::knob::{Knob, KnobValue};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One deployment configuration: a choice index per knob plus its flat index
/// (Definition 1 in the paper — "all of the deployment settings … encoded as
/// the attributes of a feature vector").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    /// Flat index into the space (mixed-radix encoding of `choices`).
    pub index: u64,
    /// Per-knob candidate indices.
    pub choices: Vec<usize>,
}

/// The set of all deployment configurations of one task.
///
/// Knob choice indices are encoded into a flat `u64` with a mixed-radix
/// codec: knob 0 is the fastest-varying digit.
///
/// # Example
///
/// ```
/// use schedule::{ConfigSpace, Knob};
///
/// let space = ConfigSpace::new("demo", vec![
///     Knob::split("tile", 8, 2),
///     Knob::choice("unroll", vec![0, 512]),
/// ]);
/// assert_eq!(space.len(), 8); // 4 factorizations x 2 choices
/// let cfg = space.config(5).unwrap();
/// assert_eq!(space.index_of(&cfg.choices), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// Name of the owning task (diagnostics only).
    pub task_name: String,
    knobs: Vec<Knob>,
    /// Cumulative radix products: `strides[i]` = product of cardinalities of
    /// knobs `0..i`.
    strides: Vec<u64>,
    len: u64,
}

impl ConfigSpace {
    /// Builds a space from knobs.
    ///
    /// # Panics
    ///
    /// Panics if `knobs` is empty or the space size overflows `u64`.
    #[must_use]
    pub fn new(task_name: impl Into<String>, knobs: Vec<Knob>) -> Self {
        assert!(!knobs.is_empty(), "a config space needs at least one knob");
        let mut strides = Vec::with_capacity(knobs.len());
        let mut len: u64 = 1;
        for k in &knobs {
            strides.push(len);
            // aal-lint: allow(unwrap, reason = "deliberate hard stop: a space larger than u64 cannot be indexed")
            len = len.checked_mul(k.cardinality() as u64).expect("config space size overflows u64");
        }
        ConfigSpace { task_name: task_name.into(), knobs, strides, len }
    }

    /// The knobs, in digit order.
    #[must_use]
    pub fn knobs(&self) -> &[Knob] {
        &self.knobs
    }

    /// Number of knobs (the dimensionality of the space).
    #[must_use]
    pub fn num_knobs(&self) -> usize {
        self.knobs.len()
    }

    /// Total number of configurations.
    #[must_use]
    #[allow(clippy::len_without_is_empty)] // a space is never empty by construction
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Decodes a flat index into a [`Config`].
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::IndexOutOfRange`] if `index >= self.len()`.
    pub fn config(&self, index: u64) -> Result<Config, ScheduleError> {
        if index >= self.len {
            return Err(ScheduleError::IndexOutOfRange { index, len: self.len });
        }
        let mut rem = index;
        let choices = self
            .knobs
            .iter()
            .map(|k| {
                let card = k.cardinality() as u64;
                let c = (rem % card) as usize;
                rem /= card;
                c
            })
            .collect();
        Ok(Config { index, choices })
    }

    /// Encodes per-knob choice indices into the flat index.
    ///
    /// # Panics
    ///
    /// Panics if `choices` has the wrong length or a choice is out of range.
    #[must_use]
    pub fn index_of(&self, choices: &[usize]) -> u64 {
        assert_eq!(choices.len(), self.knobs.len(), "choice vector length mismatch");
        choices
            .iter()
            .zip(&self.knobs)
            .zip(&self.strides)
            .map(|((&c, k), &stride)| {
                assert!(c < k.cardinality(), "choice {c} out of range for {}", k.name());
                c as u64 * stride
            })
            .sum()
    }

    /// The concrete knob values of a configuration, in knob order.
    #[must_use]
    pub fn values(&self, config: &Config) -> Vec<KnobValue> {
        config.choices.iter().zip(&self.knobs).map(|(&c, k)| k.value(c)).collect()
    }

    /// The value of the knob named `name` in `config`, if such a knob exists.
    #[must_use]
    pub fn value_of(&self, config: &Config, name: &str) -> Option<KnobValue> {
        self.knobs
            .iter()
            .position(|k| k.name() == name)
            .map(|i| self.knobs[i].value(config.choices[i]))
    }

    /// Maps per-knob choice indices from *another* space of the same
    /// template family into this one, clipping each choice to this space's
    /// knob cardinality. Returns `None` when the knob counts differ —
    /// mapping only makes sense between spaces of the same family.
    ///
    /// This is the core of configuration transfer (AutoTVM's log-based
    /// warm start and the tuning database's cross-task seeding).
    #[must_use]
    pub fn map_choices(&self, choices: &[usize]) -> Option<Config> {
        if choices.len() != self.knobs.len() {
            return None;
        }
        let clipped: Vec<usize> =
            choices.iter().zip(&self.knobs).map(|(&c, k)| c.min(k.cardinality() - 1)).collect();
        let index = self.index_of(&clipped);
        Some(Config { index, choices: clipped })
    }

    /// Uniformly samples one configuration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Config {
        let index = rng.gen_range(0..self.len);
        // aal-lint: allow(unwrap, reason = "sampled index is drawn from 0..len")
        self.config(index).expect("sampled index is in range")
    }

    /// Uniformly samples `n` configurations **without replacement** (when
    /// `n` exceeds the space size, every configuration is returned once).
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Config> {
        if (n as u64) >= self.len {
            return (0..self.len)
                // aal-lint: allow(unwrap, reason = "enumeration covers exactly 0..len")
                .map(|i| self.config(i).expect("exhaustive enumeration"))
                .collect();
        }
        let mut seen = std::collections::HashSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let idx = rng.gen_range(0..self.len);
            if seen.insert(idx) {
                // aal-lint: allow(unwrap, reason = "sampled index is drawn from 0..len")
                out.push(self.config(idx).expect("sampled index is in range"));
            }
        }
        out
    }
}

impl fmt::Display for ConfigSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ConfigSpace[{}] ({} points):", self.task_name, self.len)?;
        for k in &self.knobs {
            writeln!(f, "  {k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_space() -> ConfigSpace {
        ConfigSpace::new(
            "t",
            vec![
                Knob::split("a", 4, 2), // 3 candidates
                Knob::choice("b", vec![0, 1]),
                Knob::split("c", 6, 2), // 4 candidates
            ],
        )
    }

    #[test]
    fn len_is_product() {
        assert_eq!(small_space().len(), 3 * 2 * 4);
    }

    #[test]
    fn codec_round_trips_every_index() {
        let s = small_space();
        for i in 0..s.len() {
            let cfg = s.config(i).unwrap();
            assert_eq!(s.index_of(&cfg.choices), i);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let s = small_space();
        assert!(matches!(s.config(s.len()), Err(ScheduleError::IndexOutOfRange { .. })));
    }

    #[test]
    fn values_materialize() {
        let s = small_space();
        let cfg = s.config(0).unwrap();
        let vals = s.values(&cfg);
        assert_eq!(vals[0], KnobValue::Split(vec![1, 4]));
        assert_eq!(vals[1], KnobValue::Choice(0));
    }

    #[test]
    fn value_of_by_name() {
        let s = small_space();
        let cfg = s.config(3).unwrap(); // a=0 wraps: 3 % 3 = 0, b = 1
        assert_eq!(s.value_of(&cfg, "b"), Some(KnobValue::Choice(1)));
        assert_eq!(s.value_of(&cfg, "missing"), None);
    }

    #[test]
    fn map_choices_clips_and_rejects_mismatched_arity() {
        let big = ConfigSpace::new(
            "big",
            vec![Knob::split("a", 64, 2), Knob::choice("b", vec![0, 1]), Knob::split("c", 64, 2)],
        );
        let small = small_space(); // a: 3 candidates, b: 2, c: 4
        let last = big.config(big.len() - 1).unwrap();
        let mapped = small.map_choices(&last.choices).unwrap();
        for (&c, k) in mapped.choices.iter().zip(small.knobs()) {
            assert!(c < k.cardinality());
        }
        assert_eq!(small.index_of(&mapped.choices), mapped.index);
        // In-range choices map unchanged.
        let id = small.map_choices(&[1, 1, 2]).unwrap();
        assert_eq!(id.choices, vec![1, 1, 2]);
        // Arity mismatch maps nothing.
        assert!(small.map_choices(&[0, 0]).is_none());
    }

    #[test]
    fn sample_distinct_no_duplicates() {
        let s = small_space();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let got = s.sample_distinct(&mut rng, 10);
        let mut idxs: Vec<u64> = got.iter().map(|c| c.index).collect();
        idxs.sort_unstable();
        idxs.dedup();
        assert_eq!(idxs.len(), 10);
    }

    #[test]
    fn sample_distinct_exhausts_small_space() {
        let s = ConfigSpace::new("t", vec![Knob::choice("b", vec![0, 1, 2])]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        assert_eq!(s.sample_distinct(&mut rng, 99).len(), 3);
    }
}

//! Error types for configuration handling and lowering.

use std::fmt;

/// Errors from configuration decoding or kernel lowering.
///
/// `Invalid*` variants correspond to configurations that TVM would fail to
/// launch on the device (the tuner records them as failed measurements with
/// zero GFLOPS, exactly like AutoTVM does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A flat index was outside the configuration space.
    IndexOutOfRange {
        /// The offending index.
        index: u64,
        /// Total size of the space.
        len: u64,
    },
    /// The launch would exceed the per-block thread limit.
    InvalidThreadCount {
        /// Threads per block the configuration requires.
        threads: usize,
        /// Device limit.
        limit: usize,
    },
    /// The launch would exceed per-block shared memory.
    InvalidSharedMem {
        /// Bytes of shared memory the configuration requires.
        bytes: usize,
        /// Device limit in bytes.
        limit: usize,
    },
    /// The kernel would need more registers than a thread can hold even
    /// after spilling heuristics.
    InvalidRegisterCount {
        /// Estimated registers per thread.
        regs: usize,
        /// Architectural per-thread cap.
        limit: usize,
    },
    /// The task kind has no template (cannot build a config space).
    UnsupportedTask(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::IndexOutOfRange { index, len } => {
                write!(f, "config index {index} out of range for space of {len}")
            }
            ScheduleError::InvalidThreadCount { threads, limit } => {
                write!(f, "invalid config: {threads} threads/block exceeds {limit}")
            }
            ScheduleError::InvalidSharedMem { bytes, limit } => {
                write!(f, "invalid config: {bytes} B shared memory exceeds {limit} B")
            }
            ScheduleError::InvalidRegisterCount { regs, limit } => {
                write!(f, "invalid config: {regs} registers/thread exceeds {limit}")
            }
            ScheduleError::UnsupportedTask(name) => {
                write!(f, "no schedule template for task `{name}`")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

//! Integer factorization helpers used to enumerate split-knob candidates.

/// All divisors of `n`, ascending.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn divisors(n: usize) -> Vec<usize> {
    assert!(n > 0, "divisors of 0 are undefined");
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d * d != n {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// All ordered `k`-tuples of positive integers whose product is `n`,
/// in lexicographic order.
///
/// This is AutoTVM's split-candidate enumeration: a `define_split` with
/// `num_outputs = k` over an axis of extent `n` yields exactly these tuples.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
#[must_use]
pub fn ordered_factorizations(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(n > 0 && k > 0, "need n > 0 and k > 0");
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(rem: usize, slots: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if slots == 1 {
            cur.push(rem);
            out.push(cur.clone());
            cur.pop();
            return;
        }
        for d in divisors(rem) {
            cur.push(d);
            rec(rem / d, slots - 1, cur, out);
            cur.pop();
        }
    }
    rec(n, k, &mut cur, &mut out);
    out
}

/// Number of ordered `k`-factorizations of `n` without materializing them.
#[must_use]
pub fn count_ordered_factorizations(n: usize, k: usize) -> u64 {
    assert!(n > 0 && k > 0, "need n > 0 and k > 0");
    if k == 1 {
        return 1;
    }
    divisors(n).iter().map(|&d| count_ordered_factorizations(n / d, k - 1)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisors_of_12() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
    }

    #[test]
    fn divisors_of_prime() {
        assert_eq!(divisors(7), vec![1, 7]);
    }

    #[test]
    fn divisors_of_one() {
        assert_eq!(divisors(1), vec![1]);
    }

    #[test]
    fn factorizations_products_are_n() {
        for f in ordered_factorizations(24, 3) {
            assert_eq!(f.iter().product::<usize>(), 24);
            assert_eq!(f.len(), 3);
        }
    }

    #[test]
    fn factorization_counts_match_enumeration() {
        for n in [1, 2, 7, 12, 64, 224] {
            for k in 1..=4 {
                assert_eq!(
                    count_ordered_factorizations(n, k),
                    ordered_factorizations(n, k).len() as u64,
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn power_of_two_count_is_stars_and_bars() {
        // Ordered factorizations of 2^e into k parts = C(e + k - 1, k - 1).
        // 2^6 into 4: C(9,3) = 84.
        assert_eq!(count_ordered_factorizations(64, 4), 84);
        // 2^5 * 7 into 4: C(8,3) * 4 = 224.
        assert_eq!(count_ordered_factorizations(224, 4), 224);
    }

    #[test]
    fn lexicographic_order() {
        let f = ordered_factorizations(4, 2);
        assert_eq!(f, vec![vec![1, 4], vec![2, 2], vec![4, 1]]);
    }
}

//! Feature vectors for configurations.
//!
//! Both the evaluation function (GBT regression) and TED's kernel matrix
//! consume a numeric embedding of each configuration. We use AutoTVM's
//! *knob features*: every split factor contributes its log2, every
//! categorical knob contributes a scaled value. Log-scaling makes Euclidean
//! distance meaningful — doubling a tile size is one unit apart regardless
//! of magnitude — which is what the paper's distance-based TED (Algorithm 1)
//! and radius-based neighborhoods rely on.

use crate::knob::{Knob, KnobValue};
use crate::space::{Config, ConfigSpace};

/// Dimensionality of the feature vector produced for `space`.
#[must_use]
pub fn feature_len(space: &ConfigSpace) -> usize {
    space
        .knobs()
        .iter()
        .map(|k| match k {
            Knob::Split { num_outputs, .. } => *num_outputs,
            Knob::Choice { .. } => 1,
        })
        .sum()
}

/// Embeds one configuration as a feature vector of [`feature_len`] entries.
#[must_use]
pub fn features(space: &ConfigSpace, config: &Config) -> Vec<f64> {
    let mut out = Vec::with_capacity(feature_len(space));
    features_into(space, config, &mut out);
    out
}

/// Appends the feature vector of `config` to `out` — lets hot scoring loops
/// reuse one flat buffer across rows instead of allocating a `Vec` per
/// configuration.
pub fn features_into(space: &ConfigSpace, config: &Config, out: &mut Vec<f64>) {
    for value in space.values(config) {
        match value {
            KnobValue::Split(factors) => {
                out.extend(factors.iter().map(|&f| (f as f64).log2()));
            }
            KnobValue::Choice(v) => {
                // Signed log1p keeps large step values (1500) commensurate
                // with log2 tile factors and stays finite for any integer.
                let x = v as f64;
                out.push(x.signum() * x.abs().ln_1p());
            }
        }
    }
}

/// Embeds many configurations at once (row-major).
#[must_use]
pub fn feature_matrix(space: &ConfigSpace, configs: &[Config]) -> Vec<Vec<f64>> {
    configs.iter().map(|c| features(space, c)).collect()
}

/// Squared Euclidean distance between two feature vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
#[must_use]
pub fn sq_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConfigSpace {
        ConfigSpace::new("t", vec![Knob::split("a", 8, 2), Knob::choice("u", vec![0, 512])])
    }

    #[test]
    fn feature_len_counts_split_outputs() {
        assert_eq!(feature_len(&space()), 3);
    }

    #[test]
    fn split_features_are_log2() {
        let s = space();
        // index 1 -> a = (2, 4), u = 0.
        let cfg = s.config(1).unwrap();
        let f = features(&s, &cfg);
        assert_eq!(f, vec![1.0, 2.0, 0.0]);
    }

    #[test]
    fn choice_feature_is_log1p() {
        let s = space();
        let n = s.len();
        let cfg = s.config(n - 1).unwrap(); // u = 512
        let f = features(&s, &cfg);
        assert!((f[2] - (513.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn distances_are_symmetric_and_zero_on_self() {
        let s = space();
        let a = features(&s, &s.config(0).unwrap());
        let b = features(&s, &s.config(3).unwrap());
        assert_eq!(sq_distance(&a, &a), 0.0);
        assert_eq!(sq_distance(&a, &b), sq_distance(&b, &a));
    }

    #[test]
    fn features_into_appends_and_matches_features() {
        let s = space();
        let a = s.config(1).unwrap();
        let b = s.config(3).unwrap();
        let mut buf = Vec::new();
        features_into(&s, &a, &mut buf);
        features_into(&s, &b, &mut buf);
        assert_eq!(buf.len(), 2 * feature_len(&s));
        assert_eq!(&buf[..3], features(&s, &a).as_slice());
        assert_eq!(&buf[3..], features(&s, &b).as_slice());
    }

    #[test]
    fn matrix_shape() {
        let s = space();
        let cfgs: Vec<_> = (0..4).map(|i| s.config(i).unwrap()).collect();
        let m = feature_matrix(&s, &cfgs);
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|r| r.len() == 3));
    }
}

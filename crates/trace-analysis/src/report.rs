//! Self-contained HTML tuning reports.
//!
//! One run directory in, one HTML file out: convergence curves per task,
//! a per-phase flamegraph from the span tree, the BAO radius and SA
//! accept-rate adaptation panels, and — when a baseline is given — the
//! statistical comparison table. Everything is inlined (styles and SVG);
//! the file references no external asset, so it can be attached to a CI
//! artifact or mailed around and still render.
//!
//! Charts follow the repo's data-viz conventions: categorical slot 1/2 for
//! run vs baseline, a single-hue blue ramp for flamegraph depth, status
//! colors only for verdicts (always paired with a glyph + word, never color
//! alone), text in ink tokens, and a dark mode selected via
//! `prefers-color-scheme` with a `data-theme` override.

use crate::compare::{RunComparison, Verdict};
use crate::model_insight;
use crate::trace::{FlameNode, TraceData};
use active_learning::{read_model_quality, ModelPredRecord, RunDir, RunManifest, TuningLog};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// A run directory loaded for reporting.
#[derive(Debug)]
pub struct LoadedRun {
    /// Run id (directory name).
    pub id: String,
    /// The run's manifest.
    pub manifest: RunManifest,
    /// One log per task.
    pub logs: Vec<TuningLog>,
    /// The telemetry trace, when the run wrote one.
    pub trace: Option<TraceData>,
    /// Model-introspection capture records — empty when the run was not
    /// tuned with capture on.
    pub model_quality: Vec<ModelPredRecord>,
}

impl LoadedRun {
    /// Loads manifest, logs, and (if present) trace from `path`.
    ///
    /// # Errors
    ///
    /// Returns a message when the manifest or logs cannot be read.
    pub fn load(path: &Path) -> Result<LoadedRun, String> {
        if !path.is_dir() {
            return Err(format!("{} is not a run directory", path.display()));
        }
        let dir =
            RunDir::create(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        let manifest =
            dir.read_manifest().map_err(|e| format!("bad manifest in {}: {e}", path.display()))?;
        let logs = dir.read_logs().map_err(|e| format!("bad logs in {}: {e}", path.display()))?;
        let trace = TraceData::load(&dir.trace_path())
            .map_err(|e| format!("unreadable trace in {}: {e}", path.display()))?;
        let mq_path = dir.model_quality_path();
        let model_quality = if mq_path.is_file() {
            read_model_quality(&mq_path)
                .map_err(|e| format!("bad model quality in {}: {e}", path.display()))?
        } else {
            Vec::new()
        };
        let id = path
            .file_name()
            .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned());
        Ok(LoadedRun { id, manifest, logs, trace, model_quality })
    }

    /// Best-so-far GFLOPS per trial, per task. Prefers the trace's `trial`
    /// events (they carry span context and survive partial runs); falls
    /// back to the task logs for trace-less run directories.
    #[must_use]
    pub fn convergence_curves(&self) -> BTreeMap<String, Vec<(f64, f64)>> {
        if let Some(trace) = &self.trace {
            let series = trace.task_series();
            if series.values().any(|s| !s.is_empty()) {
                return series
                    .into_iter()
                    .filter(|(_, s)| !s.is_empty())
                    .map(|(task, s)| {
                        #[allow(clippy::cast_precision_loss)]
                        let pts = s.iter().map(|t| (t.trial as f64, t.best_gflops)).collect();
                        (task, pts)
                    })
                    .collect();
            }
        }
        self.logs
            .iter()
            .filter(|l| !l.records.is_empty())
            .map(|l| {
                #[allow(clippy::cast_precision_loss)]
                let pts =
                    l.convergence_curve().iter().enumerate().map(|(i, &g)| (i as f64, g)).collect();
                (l.task_name.clone(), pts)
            })
            .collect()
    }
}

/// Renders the full report. `baseline` and `comparison` travel together:
/// the comparison table appears when both are given.
#[must_use]
pub fn render_report(
    run: &LoadedRun,
    baseline: Option<&LoadedRun>,
    comparison: Option<&RunComparison>,
) -> String {
    let mut warnings: Vec<String> = Vec::new();
    if let Some(w) = run.manifest.schema_warning() {
        warnings.push(w);
    }
    if let Some(trace) = &run.trace {
        if let Some(w) = trace.schema_warning() {
            warnings.push(w);
        }
        if trace.malformed_lines > 0 {
            warnings.push(format!(
                "{} corrupt trace line(s) skipped — charts may be missing points",
                trace.malformed_lines
            ));
        }
    } else {
        warnings.push("run has no trace.jsonl — flamegraph and adaptation panels omitted".into());
    }

    let mut body = String::new();
    header_section(&mut body, run, baseline, &warnings);
    if let Some(cmp) = comparison {
        compare_section(&mut body, cmp);
    }
    convergence_section(&mut body, run, baseline);
    model_quality_section(&mut body, run);
    if let Some(trace) = &run.trace {
        health_section(&mut body, run, trace);
        executor_section(&mut body, run, trace);
        flame_section(&mut body, trace);
        adaptation_sections(&mut body, trace);
    }
    let _ = write!(
        body,
        "<footer class=\"muted\">generated by aaltune report · run {}</footer>",
        esc(&run.id)
    );

    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
         <title>aaltune report — {}</title>\n<style>{}</style>\n</head>\n\
         <body class=\"viz-root\">\n{}\n</body>\n</html>\n",
        esc(&run.id),
        STYLE,
        body
    )
}

/// Inline stylesheet: palette roles as CSS custom properties, dark values
/// under both the OS media query and the explicit `data-theme` scope.
const STYLE: &str = "\
.viz-root{\
color-scheme:light;\
--surface-1:#fcfcfb;--page:#f9f9f7;\
--text-primary:#0b0b0b;--text-secondary:#52514e;--text-muted:#898781;\
--grid:#e1e0d9;--axis:#c3c2b7;--border:rgba(11,11,11,0.10);\
--series-1:#2a78d6;--series-2:#eb6834;\
--status-good:#006300;--status-critical:#d03b3b;\
--ramp-0:#86b6ef;--ramp-1:#5598e7;--ramp-2:#2a78d6;--ramp-3:#1c5cab;--ramp-4:#184f95;\
font-family:system-ui,-apple-system,\"Segoe UI\",sans-serif;\
margin:0;padding:24px;background:var(--page);color:var(--text-primary);\
}\
@media (prefers-color-scheme:dark){\
:root:where(:not([data-theme=\"light\"])) .viz-root{\
color-scheme:dark;\
--surface-1:#1a1a19;--page:#0d0d0d;\
--text-primary:#ffffff;--text-secondary:#c3c2b7;--text-muted:#898781;\
--grid:#2c2c2a;--axis:#383835;--border:rgba(255,255,255,0.10);\
--series-1:#3987e5;--series-2:#d95926;\
--status-good:#0ca30c;--status-critical:#d03b3b;\
--ramp-0:#9ec5f4;--ramp-1:#6da7ec;--ramp-2:#3987e5;--ramp-3:#256abf;--ramp-4:#184f95;\
}}\
:root[data-theme=\"dark\"] .viz-root{\
color-scheme:dark;\
--surface-1:#1a1a19;--page:#0d0d0d;\
--text-primary:#ffffff;--text-secondary:#c3c2b7;--text-muted:#898781;\
--grid:#2c2c2a;--axis:#383835;--border:rgba(255,255,255,0.10);\
--series-1:#3987e5;--series-2:#d95926;\
--status-good:#0ca30c;--status-critical:#d03b3b;\
--ramp-0:#9ec5f4;--ramp-1:#6da7ec;--ramp-2:#3987e5;--ramp-3:#256abf;--ramp-4:#184f95;\
}\
h1{font-size:1.3rem;margin:0 0 4px}\
h2{font-size:1.05rem;margin:28px 0 8px}\
section,header{max-width:1100px;margin:0 auto}\
.muted{color:var(--text-muted);font-size:0.85rem}\
.meta{display:grid;grid-template-columns:repeat(auto-fit,minmax(150px,1fr));gap:8px;\
background:var(--surface-1);border:1px solid var(--border);border-radius:8px;\
padding:12px 16px;margin-top:12px}\
.meta .k{color:var(--text-secondary);font-size:0.78rem}\
.meta .v{font-size:0.95rem}\
.warn{color:var(--text-secondary);background:var(--surface-1);\
border:1px solid var(--border);border-left:3px solid var(--status-critical);\
border-radius:4px;padding:6px 10px;margin-top:8px;font-size:0.85rem}\
.grid{display:grid;grid-template-columns:repeat(auto-fill,minmax(320px,1fr));gap:16px}\
.panel{background:var(--surface-1);border:1px solid var(--border);border-radius:8px;\
padding:12px}\
.panel h3{font-size:0.9rem;margin:0 0 6px;color:var(--text-primary)}\
.legend{display:flex;gap:16px;margin:4px 0 8px;font-size:0.8rem;\
color:var(--text-secondary)}\
.legend .swatch{display:inline-block;width:14px;height:3px;border-radius:2px;\
vertical-align:middle;margin-right:5px}\
svg{display:block;width:100%;height:auto}\
svg text{fill:var(--text-muted);font-size:10px;font-family:inherit}\
.gridline{stroke:var(--grid);stroke-width:1}\
.axisline{stroke:var(--axis);stroke-width:1}\
.line-1{stroke:var(--series-1);stroke-width:2;fill:none;\
stroke-linejoin:round;stroke-linecap:round}\
.line-2{stroke:var(--series-2);stroke-width:2;fill:none;\
stroke-linejoin:round;stroke-linecap:round}\
.dot-1{fill:var(--series-1)}\
.dot-2{fill:var(--series-2)}\
.flame rect{stroke:var(--surface-1);stroke-width:2;rx:2}\
table{border-collapse:collapse;width:100%;background:var(--surface-1);\
border:1px solid var(--border);border-radius:8px;font-size:0.85rem}\
th{text-align:left;color:var(--text-secondary);font-weight:600;\
border-bottom:1px solid var(--axis);padding:7px 10px}\
td{padding:6px 10px;border-bottom:1px solid var(--grid)}\
td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}\
.v-improved{color:var(--status-good);font-weight:600}\
.v-regressed{color:var(--status-critical);font-weight:600}\
.v-noise{color:var(--text-muted)}\
.v-incomparable{color:var(--text-muted);font-style:italic}\
";

fn header_section(
    body: &mut String,
    run: &LoadedRun,
    baseline: Option<&LoadedRun>,
    warnings: &[String],
) {
    let m = &run.manifest;
    let _ = write!(body, "<header><h1>Tuning report — {}</h1>", esc(&run.id));
    if let Some(b) = baseline {
        let _ = write!(body, "<div class=\"muted\">baseline: {}</div>", esc(&b.id));
    }
    let _ = write!(body, "<div class=\"meta\">");
    let mut kv = |k: &str, v: String| {
        let _ = write!(body, "<div><div class=\"k\">{k}</div><div class=\"v\">{v}</div></div>");
    };
    kv("model", esc(&m.model));
    kv("method", esc(&m.method));
    kv("seed", m.seed.to_string());
    kv("trials/task", m.options.n_trial.to_string());
    kv("tasks", m.tasks.len().to_string());
    kv("git", esc(m.git_describe.as_deref().unwrap_or("—")));
    kv("wall time", m.wall_time_s.map_or_else(|| "—".to_string(), |w| format!("{w:.1}s")));
    let _ = write!(body, "</div>");
    for w in warnings {
        let _ = write!(body, "<div class=\"warn\">⚠ {}</div>", esc(w));
    }
    let _ = write!(body, "</header>");
}

fn compare_section(body: &mut String, cmp: &RunComparison) {
    let _ = write!(
        body,
        "<section><h2>Comparison vs baseline</h2>\
         <div class=\"muted\">{} improved · {} regressed · {} noise · \
         {} incomparable — \
         {:.0}% confidence, {} resamples, min effect {:.1}%</div>",
        cmp.count(Verdict::Improved),
        cmp.count(Verdict::Regressed),
        cmp.count(Verdict::Noise),
        cmp.count(Verdict::Incomparable),
        100.0 * (1.0 - cmp.options.alpha),
        cmp.options.resamples,
        cmp.options.min_effect_pct,
    );
    let _ = write!(
        body,
        "<table><thead><tr><th>task</th><th class=\"num\">base mean</th>\
         <th class=\"num\">cand mean</th><th class=\"num\">Δ%</th>\
         <th class=\"num\">CI (GFLOPS)</th><th>verdict</th></tr></thead><tbody>"
    );
    let cell = |v: f64| if v.is_nan() { "-".to_string() } else { format!("{v:.2}") };
    for t in &cmp.tasks {
        let (class, glyph) = match t.verdict {
            Verdict::Improved => ("v-improved", "▲"),
            Verdict::Regressed => ("v-regressed", "▼"),
            Verdict::Noise => ("v-noise", "·"),
            Verdict::Incomparable => ("v-incomparable", "∅"),
        };
        let delta =
            if t.delta_pct.is_nan() { "-".to_string() } else { format!("{:+.2}%", t.delta_pct) };
        let ci = if t.ci.lo.is_nan() {
            "-".to_string()
        } else {
            format!("[{:.2}, {:.2}]", t.ci.lo, t.ci.hi)
        };
        let _ = write!(
            body,
            "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{delta}</td><td class=\"num\">{ci}</td>\
             <td><span class=\"{}\">{} {}</span></td></tr>",
            esc(&t.task),
            cell(t.base_mean),
            cell(t.cand_mean),
            class,
            glyph,
            t.verdict.label(),
        );
    }
    let _ = write!(
        body,
        "</tbody></table><div class=\"muted\">aggregate best-GFLOPS delta \
         {:+.2} [{:+.2}, {:+.2}]</div></section>",
        cmp.aggregate.delta, cmp.aggregate.lo, cmp.aggregate.hi
    );
}

fn convergence_section(body: &mut String, run: &LoadedRun, baseline: Option<&LoadedRun>) {
    let curves = run.convergence_curves();
    if curves.is_empty() {
        return;
    }
    let base_curves = baseline.map(LoadedRun::convergence_curves).unwrap_or_default();
    let _ = write!(
        body,
        "<section><h2>Convergence — best-so-far GFLOPS per trial</h2><div class=\"grid\">"
    );
    for (task, pts) in &curves {
        let mut series: Vec<Series<'_>> = vec![Series { label: "run", points: pts, slot: 1 }];
        if let Some(bp) = base_curves.get(task) {
            series.push(Series { label: "baseline", points: bp, slot: 2 });
        }
        let _ = write!(body, "<div class=\"panel\"><h3>{}</h3>", esc(task));
        if series.len() >= 2 {
            let _ = write!(body, "<div class=\"legend\">");
            for s in &series {
                let _ = write!(
                    body,
                    "<span><span class=\"swatch\" \
                     style=\"background:var(--series-{})\"></span>{}</span>",
                    s.slot,
                    esc(s.label)
                );
            }
            let _ = write!(body, "</div>");
        }
        body.push_str(&line_chart(&series, "trial", "GFLOPS"));
        let _ = write!(body, "</div>");
    }
    let _ = write!(body, "</div></section>");
}

/// The surrogate-quality panel: per-task cumulative rank correlation and
/// regret curves from the run's capture stream, with the `explain`
/// verdict. Omitted entirely for runs tuned without capture.
fn model_quality_section(body: &mut String, run: &LoadedRun) {
    if run.model_quality.is_empty() {
        return;
    }
    let tasks = model_insight::analyze(&run.model_quality);
    let _ = write!(
        body,
        "<section><h2>Model quality — was the surrogate trustworthy?</h2>\
         <div class=\"muted\">cumulative Spearman rank correlation between \
         predicted and measured GFLOPS, and cumulative regret vs the run's \
         best config, per refit round</div><div class=\"grid\">"
    );
    for t in &tasks {
        let corr_pts: Vec<(f64, f64)> = t
            .rounds
            .iter()
            .filter_map(|r| {
                #[allow(clippy::cast_precision_loss)]
                r.cum_rank_corr.map(|c| (r.round as f64, c))
            })
            .collect();
        #[allow(clippy::cast_precision_loss)]
        let regret_pts: Vec<(f64, f64)> =
            t.rounds.iter().map(|r| (r.round as f64, r.cum_regret)).collect();
        let verdict = match (t.trustworthy_from, t.final_rank_corr) {
            (Some(n), Some(c)) => {
                format!("trustworthy from round {n} · final rank-corr {c:.2}")
            }
            (None, Some(c)) => format!("untrustworthy all run · final rank-corr {c:.2}"),
            _ => "model never scored — blind search only".to_string(),
        };
        let _ = write!(
            body,
            "<div class=\"panel\"><h3>{}</h3><div class=\"muted\">{}</div>",
            esc(&t.task),
            esc(&verdict)
        );
        if !corr_pts.is_empty() {
            body.push_str(&line_chart(
                &[Series { label: "rank correlation", points: &corr_pts, slot: 1 }],
                "round",
                "rank corr",
            ));
        }
        if !regret_pts.is_empty() {
            body.push_str(&line_chart(
                &[Series { label: "cumulative regret", points: &regret_pts, slot: 2 }],
                "round",
                "regret GFLOPS",
            ));
        }
        let _ = write!(body, "</div>");
    }
    let _ = write!(body, "</div></section>");
}

/// The fault-pipeline panel: how many trials failed, were retried, or got
/// quarantined. Counters come from the trace, summed across process
/// segments, so a resumed run shows whole-run totals.
fn health_section(body: &mut String, run: &LoadedRun, trace: &TraceData) {
    let summary = telemetry::TraceSummary::from_records(&trace.records);
    let c = |name: &str| summary.counters.get(name).copied().unwrap_or(0);
    let _ = write!(body, "<section><h2>Measurement health</h2><div class=\"meta\">");
    let mut kv = |k: &str, v: String| {
        let _ = write!(body, "<div><div class=\"k\">{k}</div><div class=\"v\">{v}</div></div>");
    };
    kv("measurements", c("measure.total").to_string());
    kv("invalid configs", c("measure.invalid").to_string());
    kv("injected faults", c("measure.fault").to_string());
    kv("retries", c("measure.retry").to_string());
    kv("quarantined", c("measure.quarantine").to_string());
    kv("quarantine hits", c("measure.quarantine_hit").to_string());
    kv("resumes", c("tune.resume").to_string());
    kv("aborted tasks", c("tune.aborted").to_string());
    kv(
        "fault rate",
        run.manifest.fault.filter(|f| f.rate > 0.0).map_or_else(
            || "off".to_string(),
            |f| format!("{:.1}% (seed {})", 100.0 * f.rate, f.seed),
        ),
    );
    let _ = write!(body, "</div>");
    if let Some(h) = summary.histograms.get("measure.retry.backoff_ms") {
        let _ = write!(
            body,
            "<div class=\"muted\">retry backoff: {} waits, p50 {:.0}ms, p99 {:.0}ms</div>",
            h.count(),
            h.quantile(0.5),
            h.quantile(0.99),
        );
    }
    let _ = write!(body, "</section>");
}

/// Pool health of the parallel measurement executor: worker utilization,
/// batch latency, queue depth, and per-device occupancy. Omitted entirely
/// for runs that never went through the executor (no `exec.*` counters).
fn executor_section(body: &mut String, run: &LoadedRun, trace: &TraceData) {
    let summary = telemetry::TraceSummary::from_records(&trace.records);
    let c = |name: &str| summary.counters.get(name).copied().unwrap_or(0);
    if c("exec.jobs.total") == 0 {
        return;
    }
    let _ = write!(body, "<section><h2>Executor utilization</h2><div class=\"meta\">");
    let mut kv = |k: &str, v: String| {
        let _ = write!(body, "<div><div class=\"k\">{k}</div><div class=\"v\">{v}</div></div>");
    };
    kv(
        "workers × devices",
        format!(
            "{} × {}",
            run.manifest.workers.map_or_else(|| "?".into(), |w| w.to_string()),
            run.manifest.devices.map_or_else(|| "?".into(), |d| d.to_string()),
        ),
    );
    kv("jobs measured", c("exec.jobs.total").to_string());
    kv("batches", c("exec.batch.submitted").to_string());
    kv("invalid builds", c("exec.build.invalid").to_string());
    let util = |busy: u64, idle: u64| {
        let total = busy + idle;
        if total == 0 {
            "n/a".to_string()
        } else {
            #[allow(clippy::cast_precision_loss)]
            let pct = 100.0 * busy as f64 / total as f64;
            format!("{pct:.0}%")
        }
    };
    kv("builder busy", util(c("exec.worker.build.busy_us"), c("exec.worker.build.idle_us")));
    kv("runner busy", util(c("exec.worker.run.busy_us"), c("exec.worker.run.idle_us")));
    kv("device acquires", c("exec.device.acquires").to_string());
    let _ = write!(body, "</div>");
    let hist_line = |name: &str, label: &str| {
        summary.histograms.get(name).filter(|h| h.count() > 0).map(|h| {
            format!(
                "{label}: {} obs, p50 {:.0}, p99 {:.0}",
                h.count(),
                h.quantile(0.5),
                h.quantile(0.99),
            )
        })
    };
    for line in [
        hist_line("exec.batch.wall_us", "batch wall µs"),
        hist_line("exec.batch.size", "batch size"),
        hist_line("exec.queue.build.depth", "build-queue depth"),
        hist_line("exec.queue.run.depth", "run-queue depth"),
        hist_line("exec.device.busy_us", "device hold µs"),
    ]
    .into_iter()
    .flatten()
    {
        let _ = write!(body, "<div class=\"muted\">{line}</div>");
    }
    // Per-device occupancy: one row per `exec.device.<id>.acquires` counter.
    let mut devices: Vec<(u64, u64, u64)> = summary
        .counters
        .iter()
        .filter_map(|(name, &acquires)| {
            let id: u64 =
                name.strip_prefix("exec.device.")?.strip_suffix(".acquires")?.parse().ok()?;
            Some((id, acquires, c(&format!("exec.device.{id}.busy_us"))))
        })
        .collect();
    devices.sort_unstable();
    if !devices.is_empty() {
        let _ = write!(
            body,
            "<table><thead><tr><th>device</th><th class=\"num\">acquires</th>\
             <th class=\"num\">busy</th></tr></thead><tbody>"
        );
        for (id, acquires, busy_us) in devices {
            let _ = write!(
                body,
                "<tr><td>device {id}</td><td class=\"num\">{acquires}</td>\
                 <td class=\"num\">{}</td></tr>",
                fmt_us(busy_us),
            );
        }
        let _ = write!(body, "</tbody></table>");
    }
    let _ = write!(body, "</section>");
}

fn flame_section(body: &mut String, trace: &TraceData) {
    let tree = trace.flame_tree();
    if tree.children.is_empty() {
        return;
    }
    let _ = write!(
        body,
        "<section><h2>Where the wall clock went</h2>\
         <div class=\"muted\">aggregated span tree; hover a block for its \
         name and self time, or read the table below</div>"
    );
    body.push_str(&flamegraph_svg(&tree));
    // The accessible twin of the flamegraph: the same numbers as a table.
    let mut rows: Vec<(String, &FlameNode)> = Vec::new();
    flatten(&tree, "", &mut rows);
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(n.self_us()));
    let _ = write!(
        body,
        "<table><thead><tr><th>phase</th><th class=\"num\">count</th>\
         <th class=\"num\">total</th><th class=\"num\">self</th>\
         <th class=\"num\">self %</th></tr></thead><tbody>"
    );
    let grand = tree.total_us.max(1);
    for (path, node) in rows.iter().filter(|(p, _)| !p.is_empty()) {
        #[allow(clippy::cast_precision_loss)]
        let pct = 100.0 * node.self_us() as f64 / grand as f64;
        let _ = write!(
            body,
            "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{pct:.1}%</td></tr>",
            esc(path),
            node.count,
            fmt_us(node.total_us),
            fmt_us(node.self_us()),
        );
    }
    let _ = write!(body, "</tbody></table></section>");
}

fn adaptation_sections(body: &mut String, trace: &TraceData) {
    let radius = trace.radius_series();
    if !radius.is_empty() {
        #[allow(clippy::cast_precision_loss)]
        let pts: Vec<(f64, f64)> = radius.iter().map(|r| (r.step as f64, r.radius)).collect();
        let widened: Vec<(f64, f64)> =
            pts.iter().zip(&radius).filter(|(_, r)| r.widened).map(|(p, _)| *p).collect();
        let _ = write!(
            body,
            "<section><h2>BAO scope radius over time</h2>\
             <div class=\"muted\">dots mark steps where stalling widened the \
             neighborhood</div><div class=\"panel\">"
        );
        body.push_str(&line_chart_with_marks(
            &[Series { label: "radius", points: &pts, slot: 1 }],
            &widened,
            "step",
            "radius",
        ));
        let _ = write!(body, "</div></section>");
    }
    let sa = trace.sa_series();
    if !sa.is_empty() {
        #[allow(clippy::cast_precision_loss)]
        let pts: Vec<(f64, f64)> =
            sa.iter().enumerate().map(|(i, s)| (i as f64, 100.0 * s.accept_rate())).collect();
        let _ = write!(body, "<section><h2>SA accept rate per search</h2><div class=\"panel\">");
        body.push_str(&line_chart(
            &[Series { label: "accept rate", points: &pts, slot: 1 }],
            "search",
            "accept %",
        ));
        let _ = write!(body, "</div></section>");
    }
}

/// One plotted series; `slot` picks the categorical color (1-based).
struct Series<'a> {
    label: &'a str,
    points: &'a [(f64, f64)],
    slot: u8,
}

const W: f64 = 360.0;
const H: f64 = 200.0;
const ML: f64 = 48.0; // left margin (y tick labels)
const MR: f64 = 10.0;
const MT: f64 = 10.0;
const MB: f64 = 26.0; // bottom margin (x tick labels)

fn line_chart(series: &[Series<'_>], x_label: &str, y_label: &str) -> String {
    line_chart_with_marks(series, &[], x_label, y_label)
}

fn line_chart_with_marks(
    series: &[Series<'_>],
    marks: &[(f64, f64)],
    x_label: &str,
    y_label: &str,
) -> String {
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return String::new();
    }
    let (x0, x1) = expand(bounds(all.iter().map(|p| p.0)));
    let (y0, y1) = expand(bounds(all.iter().map(|p| p.1)));
    let px = |x: f64| ML + (x - x0) / (x1 - x0) * (W - ML - MR);
    let py = |y: f64| H - MB - (y - y0) / (y1 - y0) * (H - MT - MB);

    let mut s = String::new();
    let _ = write!(
        s,
        "<svg viewBox=\"0 0 {W} {H}\" role=\"img\" \
         aria-label=\"{} vs {x_label}\">",
        esc(y_label)
    );
    // Gridlines + y ticks.
    for i in 0..=3 {
        let y = y0 + (y1 - y0) * f64::from(i) / 3.0;
        let yy = py(y);
        let _ = write!(
            s,
            "<line class=\"gridline\" x1=\"{ML}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>",
            W - MR,
            ML - 5.0,
            yy + 3.0,
            fmt_num(y)
        );
    }
    // x ticks.
    for i in 0..=3 {
        let x = x0 + (x1 - x0) * f64::from(i) / 3.0;
        let xx = px(x);
        let _ = write!(
            s,
            "<text x=\"{xx:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            H - MB + 16.0,
            fmt_num(x)
        );
    }
    // Baseline axis.
    let _ = write!(
        s,
        "<line class=\"axisline\" x1=\"{ML}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\"/>",
        H - MB,
        W - MR,
        H - MB
    );
    for srs in series {
        let mut d = String::new();
        for &(x, y) in srs.points {
            let _ = write!(d, "{:.1},{:.1} ", px(x), py(y));
        }
        let _ = write!(
            s,
            "<polyline class=\"line-{}\" points=\"{}\"><title>{}</title></polyline>",
            srs.slot,
            d.trim_end(),
            esc(srs.label)
        );
        // Per-point hover targets (kept off dense curves to stay readable).
        if srs.points.len() <= 120 {
            for &(x, y) in srs.points {
                let _ = write!(
                    s,
                    "<circle class=\"dot-{}\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"2\">\
                     <title>{}: {x_label} {}, {y_label} {}</title></circle>",
                    srs.slot,
                    px(x),
                    py(y),
                    esc(srs.label),
                    fmt_num(x),
                    fmt_num(y)
                );
            }
        }
    }
    for &(x, y) in marks {
        let _ = write!(
            s,
            "<circle class=\"dot-1\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\">\
             <title>widened at {x_label} {}</title></circle>",
            px(x),
            py(y),
            fmt_num(x)
        );
    }
    s.push_str("</svg>");
    s
}

fn flamegraph_svg(tree: &FlameNode) -> String {
    const FW: f64 = 1000.0;
    const ROW: f64 = 26.0;
    let depth = tree.depth().saturating_sub(1).max(1);
    #[allow(clippy::cast_precision_loss)]
    let height = depth as f64 * ROW;
    let mut s = String::new();
    let _ = write!(
        s,
        "<svg class=\"flame\" viewBox=\"0 0 {FW} {height}\" role=\"img\" \
         aria-label=\"per-phase time flamegraph\">"
    );
    #[allow(clippy::cast_precision_loss)]
    let scale = FW / tree.total_us.max(1) as f64;
    let grand = tree.total_us.max(1);
    // Children of the synthetic root start at depth 0.
    let mut stack: Vec<(&FlameNode, f64, usize)> = Vec::new();
    let mut x = 0.0;
    for c in &tree.children {
        stack.push((c, x, 0));
        #[allow(clippy::cast_precision_loss)]
        {
            x += c.total_us as f64 * scale;
        }
    }
    while let Some((node, x0, d)) = stack.pop() {
        #[allow(clippy::cast_precision_loss)]
        let w = node.total_us as f64 * scale;
        #[allow(clippy::cast_precision_loss)]
        let y = d as f64 * ROW;
        #[allow(clippy::cast_precision_loss)]
        let pct = 100.0 * node.total_us as f64 / grand as f64;
        let _ = write!(
            s,
            "<rect x=\"{x0:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{ROW}\" \
             fill=\"var(--ramp-{})\"><title>{} — total {} ({pct:.1}%), self {}, \
             ×{}</title></rect>",
            d % 5,
            esc(&node.name),
            fmt_us(node.total_us),
            fmt_us(node.self_us()),
            node.count
        );
        let mut cx = x0;
        for c in &node.children {
            stack.push((c, cx, d + 1));
            #[allow(clippy::cast_precision_loss)]
            {
                cx += c.total_us as f64 * scale;
            }
        }
    }
    s.push_str("</svg>");
    s
}

fn flatten<'a>(node: &'a FlameNode, prefix: &str, out: &mut Vec<(String, &'a FlameNode)>) {
    let path = if prefix.is_empty() || node.name == "run" {
        if node.name == "run" {
            String::new()
        } else {
            node.name.clone()
        }
    } else {
        format!("{prefix} / {}", node.name)
    };
    out.push((path.clone(), node));
    for c in &node.children {
        flatten(c, &path, out);
    }
}

fn bounds(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in vals.filter(|v| v.is_finite()) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo.is_finite() {
        (lo, hi)
    } else {
        (0.0, 1.0)
    }
}

fn expand((lo, hi): (f64, f64)) -> (f64, f64) {
    if (hi - lo).abs() < 1e-12 {
        (lo - 1.0, hi + 1.0)
    } else {
        (lo, hi)
    }
}

fn fmt_num(v: f64) -> String {
    if v.abs() >= 10.0 || v == v.trunc() {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn fmt_us(us: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let f = us as f64;
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", f / 1e3)
    } else {
        format!("{:.2}s", f / 1e6)
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare_logs, CompareOptions};
    use active_learning::{TrialRecord, TuneOptions};
    use telemetry::Record;

    fn sample_run(id: &str, level: f64) -> LoadedRun {
        let mut log = TuningLog::new("m.T1", "bted+bao");
        let mut best: f64 = 0.0;
        for i in 0..10 {
            let g = level + (i % 3) as f64 * 5.0;
            best = best.max(g);
            log.records.push(TrialRecord {
                trial: i,
                config_index: i as u64,
                gflops: g,
                latency_s: 1e-4,
                best_gflops: best,
            });
        }
        LoadedRun {
            id: id.to_string(),
            manifest: RunManifest {
                model: "mobilenet_v1".into(),
                method: "bted+bao".into(),
                tasks: vec!["m.T1".into()],
                seed: 0,
                options: TuneOptions::smoke(),
                schema_version: Some(1),
                git_describe: Some("v0-test".into()),
                wall_time_s: Some(1.5),
                device: None,
                fault: None,
                resumed: None,
                workers: None,
                devices: None,
                db: None,
            },
            logs: vec![log],
            trace: None,
            model_quality: Vec::new(),
        }
    }

    fn trace_with_spans() -> TraceData {
        TraceData {
            records: vec![
                Record::SpanStart { id: 1, parent: None, name: "tune_task".into(), t_us: 0 },
                Record::SpanStart { id: 2, parent: Some(1), name: "measure".into(), t_us: 5 },
                Record::SpanEnd { id: 2, name: "measure".into(), t_us: 80, dur_us: 75 },
                Record::Event {
                    name: "bao.radius".into(),
                    span: Some(1),
                    t_us: 90,
                    fields: serde_json::json!({
                        "step": 1u64, "r_t": 0.5, "radius": 2.0,
                        "widened": true, "stall_widenings": 1u64,
                    }),
                },
                Record::Event {
                    name: "sa.done".into(),
                    span: Some(1),
                    t_us: 95,
                    fields: serde_json::json!({"accepted": 3u64, "rejected": 1u64}),
                },
                Record::SpanEnd { id: 1, name: "tune_task".into(), t_us: 100, dur_us: 100 },
            ],
            malformed_lines: 0,
            schema_version: Some(1),
        }
    }

    #[test]
    fn report_is_self_contained_html() {
        let mut run = sample_run("run-a", 100.0);
        run.trace = Some(trace_with_spans());
        let html = render_report(&run, None, None);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("run-a"));
        assert!(html.contains("<svg"));
        assert!(html.contains("m.T1"));
        assert!(html.contains("prefers-color-scheme"), "dark mode must be selected");
        assert!(html.contains("flame"), "flamegraph present");
        assert!(html.contains("SA accept rate"));
        assert!(html.contains("BAO scope radius"));
        // Self-containment: no external asset references of any kind.
        for banned in ["http://", "https://", "<link", "<script", "url(", "@import"] {
            assert!(!html.contains(banned), "found banned token {banned}");
        }
    }

    #[test]
    fn baseline_adds_comparison_table_and_second_series() {
        let run = sample_run("run-b", 80.0);
        let base = sample_run("run-a", 100.0);
        let cmp = compare_logs(
            base.id.clone(),
            run.id.clone(),
            &base.logs,
            &run.logs,
            CompareOptions::default(),
            Vec::new(),
        );
        let html = render_report(&run, Some(&base), Some(&cmp));
        assert!(html.contains("Comparison vs baseline"));
        assert!(html.contains("▼ regressed"), "verdict must pair glyph with label");
        assert!(html.contains("baseline"), "legend names the second series");
        assert!(html.contains("line-2"), "baseline series uses categorical slot 2");
    }

    #[test]
    fn traceless_run_reports_with_warning_and_log_curves() {
        let run = sample_run("run-c", 50.0);
        let html = render_report(&run, None, None);
        assert!(html.contains("no trace.jsonl"));
        assert!(html.contains("Convergence"), "log fallback still draws curves");
        assert!(!html.contains("Where the wall clock went"));
    }

    #[test]
    fn health_panel_sums_counters_across_resume_segments() {
        let mut run = sample_run("run-e", 100.0);
        let mut trace = trace_with_spans();
        // Final snapshot of the first process, then a resume boundary, then
        // the second process's snapshot: totals must sum to 5.
        trace.records.push(Record::Counter { name: "measure.fault".into(), value: 3 });
        trace.records.push(Record::Schema { version: 2 });
        trace.records.push(Record::Counter { name: "measure.fault".into(), value: 2 });
        run.trace = Some(trace);
        let html = render_report(&run, None, None);
        assert!(html.contains("Measurement health"));
        assert!(html.contains(">5<"), "3 pre-resume + 2 post-resume faults: {html}");
        assert!(html.contains("fault rate"));
    }

    #[test]
    fn executor_panel_renders_only_for_executor_runs() {
        // Without exec.* counters the panel is omitted entirely.
        let mut run = sample_run("run-f", 100.0);
        run.trace = Some(trace_with_spans());
        let html = render_report(&run, None, None);
        assert!(!html.contains("Executor utilization"));

        // With exec.* counters the panel reports utilization and devices.
        let mut trace = trace_with_spans();
        for (name, value) in [
            ("exec.jobs.total", 48),
            ("exec.batch.submitted", 6),
            ("exec.build.invalid", 2),
            ("exec.worker.run.busy_us", 900),
            ("exec.worker.run.idle_us", 100),
            ("exec.device.acquires", 48),
            ("exec.device.0.acquires", 30),
            ("exec.device.0.busy_us", 700),
            ("exec.device.1.acquires", 18),
            ("exec.device.1.busy_us", 300),
        ] {
            trace.records.push(Record::Counter { name: name.into(), value });
        }
        let mut wall = telemetry::Histogram::new();
        wall.observe(1500.0);
        wall.observe(2500.0);
        trace.records.push(Record::Histogram { name: "exec.batch.wall_us".into(), hist: wall });
        run.trace = Some(trace);
        run.manifest.workers = Some(8);
        run.manifest.devices = Some(2);
        let html = render_report(&run, None, None);
        assert!(html.contains("Executor utilization"));
        assert!(html.contains("8 × 2"), "manifest workers/devices shown: {html}");
        assert!(html.contains("runner busy"));
        assert!(html.contains("90%"), "busy 900 of 1000 µs rounds to 90%");
        assert!(html.contains("batch wall µs"));
        assert!(html.contains("device 0") && html.contains("device 1"));
    }

    #[test]
    fn model_quality_panel_appears_only_for_captured_runs() {
        let mut run = sample_run("run-g", 100.0);
        let html = render_report(&run, None, None);
        assert!(!html.contains("Model quality"), "no capture → no panel");

        run.model_quality = (0..12)
            .map(|i| ModelPredRecord {
                task: "m.T1".to_string(),
                round: i / 4,
                trial: i,
                config_index: i as u64,
                predicted_mean: if i >= 4 { Some(50.0 + i as f64) } else { None },
                predicted_std: if i >= 4 { Some(4.0) } else { None },
                acquisition: None,
                measured_gflops: 50.0 + i as f64,
            })
            .collect();
        let html = render_report(&run, None, None);
        assert!(html.contains("Model quality"));
        assert!(html.contains("rank correlation"));
        assert!(html.contains("cumulative regret"));
        assert!(html.contains("trustworthy from round 1"), "{html}");
        // Panel must not break self-containment.
        for banned in ["http://", "https://", "<link", "<script", "url(", "@import"] {
            assert!(!html.contains(banned), "found banned token {banned}");
        }
    }

    #[test]
    fn task_names_are_html_escaped() {
        let mut run = sample_run("run-d", 10.0);
        run.logs[0].task_name = "m.<T1>&\"q\"".into();
        let html = render_report(&run, None, None);
        assert!(html.contains("m.&lt;T1&gt;&amp;&quot;q&quot;"));
        assert!(!html.contains("m.<T1>"));
    }
}

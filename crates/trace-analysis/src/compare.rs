//! Statistical comparison of two run directories.
//!
//! Aligns the runs task-by-task, bootstraps a confidence interval for the
//! mean GFLOPS delta of each task from the *recorded trial outcomes* (not
//! just the headline means), and classifies every task as improved,
//! regressed, or noise. `aaltune compare --fail-on-regress` turns the
//! verdict into an exit code, which is what makes tuning changes CI-gatable.

use crate::model_insight::TaskModelQuality;
use crate::stats::{bootstrap_mean_delta_ci, mean, BootstrapCi};
use active_learning::{read_model_quality, RunDir, RunManifest, TuningLog, MODEL_QUALITY_FILE};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Final-rank-correlation drop (candidate vs baseline) beyond which the
/// candidate's surrogate is flagged as a model regression: the tuner may
/// still luck into good configs this run, but its cost model has stopped
/// ranking candidates correctly — the next run won't be so lucky.
pub const RANK_CORR_REGRESS_DROP: f64 = 0.25;

/// Knobs for a comparison.
#[derive(Debug, Clone, Copy)]
pub struct CompareOptions {
    /// Significance level: a task needs its `1 − alpha` CI clear of zero to
    /// leave the noise verdict.
    pub alpha: f64,
    /// Bootstrap resamples per task.
    pub resamples: usize,
    /// Minimum |mean delta| as a percentage of the baseline mean to call a
    /// task improved/regressed — statistically significant but tiny shifts
    /// stay noise.
    pub min_effect_pct: f64,
    /// Seed for the bootstrap RNG (comparisons are reproducible).
    pub seed: u64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions { alpha: 0.05, resamples: 2000, min_effect_pct: 1.0, seed: 0 }
    }
}

/// Classification of one task's delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// CI above zero and the effect size clears the threshold.
    Improved,
    /// CI below zero and the effect size clears the threshold.
    Regressed,
    /// Everything else: the delta is indistinguishable from seed noise.
    Noise,
    /// The task exists in only one of the runs, so there is nothing to
    /// bootstrap — explicitly listed instead of silently dropped.
    Incomparable,
}

impl Verdict {
    /// Stable lowercase label (used in text output and the HTML report).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "regressed",
            Verdict::Noise => "noise",
            Verdict::Incomparable => "incomparable",
        }
    }
}

/// One aligned task.
///
/// For [`Verdict::Incomparable`] rows the missing side's `*_mean` /
/// `*_best` fields are `NaN` (rendered as `-`) and the CI is degenerate.
#[derive(Debug, Clone)]
pub struct TaskComparison {
    /// Task name.
    pub task: String,
    /// Mean trial GFLOPS in the baseline run.
    pub base_mean: f64,
    /// Mean trial GFLOPS in the candidate run.
    pub cand_mean: f64,
    /// Final best GFLOPS in the baseline run.
    pub base_best: f64,
    /// Final best GFLOPS in the candidate run.
    pub cand_best: f64,
    /// Bootstrap CI for the mean delta (candidate − base).
    pub ci: BootstrapCi,
    /// Delta as a percentage of the baseline mean.
    pub delta_pct: f64,
    /// The classification.
    pub verdict: Verdict,
}

/// The full result of comparing two runs.
#[derive(Debug, Clone)]
pub struct RunComparison {
    /// Baseline run id (directory name).
    pub base_id: String,
    /// Candidate run id (directory name).
    pub cand_id: String,
    /// Aligned tasks, in task-name order.
    pub tasks: Vec<TaskComparison>,
    /// Tasks present only in the baseline run.
    pub only_in_base: Vec<String>,
    /// Tasks present only in the candidate run.
    pub only_in_cand: Vec<String>,
    /// CI over the per-task *best*-GFLOPS deltas — the aggregate answer to
    /// "did the candidate change end-of-budget quality".
    pub aggregate: BootstrapCi,
    /// Options the comparison ran with.
    pub options: CompareOptions,
    /// Surrogate-quality deltas, one per task captured in *both* runs —
    /// empty unless both run directories carry a `model_quality.jsonl`.
    pub model_quality: Vec<ModelQualityComparison>,
    /// Non-fatal issues: schema-version skew, mismatched configurations,
    /// skipped corrupt lines.
    pub warnings: Vec<String>,
}

/// One task's surrogate-quality delta between two captured runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelQualityComparison {
    /// Task name.
    pub task: String,
    /// Baseline final cumulative rank correlation.
    pub base_rank_corr: f64,
    /// Candidate final cumulative rank correlation.
    pub cand_rank_corr: f64,
    /// Whether the drop exceeds [`RANK_CORR_REGRESS_DROP`].
    pub regressed: bool,
}

/// Aligns two analyzed capture streams task-by-task and flags tasks whose
/// final rank correlation dropped by more than [`RANK_CORR_REGRESS_DROP`].
/// Tasks missing from either side, or without a final correlation (blind
/// runs), are skipped — there is no model to compare.
#[must_use]
pub fn compare_model_quality(
    base: &[TaskModelQuality],
    cand: &[TaskModelQuality],
) -> Vec<ModelQualityComparison> {
    let cand_by: BTreeMap<&str, &TaskModelQuality> =
        cand.iter().map(|t| (t.task.as_str(), t)).collect();
    let mut out: Vec<ModelQualityComparison> = base
        .iter()
        .filter_map(|b| {
            let c = cand_by.get(b.task.as_str())?;
            let (bc, cc) = (b.final_rank_corr?, c.final_rank_corr?);
            Some(ModelQualityComparison {
                task: b.task.clone(),
                base_rank_corr: bc,
                cand_rank_corr: cc,
                regressed: cc < bc - RANK_CORR_REGRESS_DROP,
            })
        })
        .collect();
    out.sort_by(|a, b| a.task.cmp(&b.task));
    out
}

impl RunComparison {
    /// True when any task regressed — on trial outcomes or (when both runs
    /// captured model diagnostics) on surrogate rank correlation.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.tasks.iter().any(|t| t.verdict == Verdict::Regressed)
            || self.model_quality.iter().any(|m| m.regressed)
    }

    /// Count of tasks with the given verdict.
    #[must_use]
    pub fn count(&self, v: Verdict) -> usize {
        self.tasks.iter().filter(|t| t.verdict == v).count()
    }

    /// Renders the comparison as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "base:      {}", self.base_id);
        let _ = writeln!(s, "candidate: {}", self.cand_id);
        let _ = writeln!(
            s,
            "confidence {:.0}%, {} resamples, min effect {:.1}%\n",
            100.0 * (1.0 - self.options.alpha),
            self.options.resamples,
            self.options.min_effect_pct
        );
        let _ = writeln!(
            s,
            "{:<28} {:>10} {:>10} {:>8} {:>22} {:<9}",
            "task", "base", "cand", "Δ%", "CI (GFLOPS)", "verdict"
        );
        let num = |v: f64| {
            if v.is_nan() {
                format!("{:>10}", "-")
            } else {
                format!("{v:>10.2}")
            }
        };
        for t in &self.tasks {
            if t.verdict == Verdict::Incomparable {
                let _ = writeln!(
                    s,
                    "{:<28} {} {} {:>8} {:>22} {:<9}",
                    t.task,
                    num(t.base_mean),
                    num(t.cand_mean),
                    "-",
                    "-",
                    t.verdict.label()
                );
                continue;
            }
            let _ = writeln!(
                s,
                "{:<28} {} {} {:>7.2}% [{:>8.2}, {:>8.2}] {:<9}",
                t.task,
                num(t.base_mean),
                num(t.cand_mean),
                t.delta_pct,
                t.ci.lo,
                t.ci.hi,
                t.verdict.label()
            );
        }
        let _ = writeln!(
            s,
            "\naggregate best-GFLOPS delta: {:+.2} [{:+.2}, {:+.2}]",
            self.aggregate.delta, self.aggregate.lo, self.aggregate.hi
        );
        let _ = writeln!(
            s,
            "verdicts: {} improved, {} regressed, {} noise, {} incomparable",
            self.count(Verdict::Improved),
            self.count(Verdict::Regressed),
            self.count(Verdict::Noise),
            self.count(Verdict::Incomparable)
        );
        if !self.model_quality.is_empty() {
            let _ = writeln!(s, "\nmodel quality (final rank correlation):");
            let _ = writeln!(s, "{:<28} {:>10} {:>10} {:<9}", "task", "base", "cand", "verdict");
            for m in &self.model_quality {
                let _ = writeln!(
                    s,
                    "{:<28} {:>10.3} {:>10.3} {:<9}",
                    m.task,
                    m.base_rank_corr,
                    m.cand_rank_corr,
                    if m.regressed { "regressed" } else { "ok" }
                );
            }
        }
        for task in &self.only_in_base {
            let _ = writeln!(s, "note: task {task} only in baseline — incomparable");
        }
        for task in &self.only_in_cand {
            let _ = writeln!(s, "note: task {task} only in candidate — incomparable");
        }
        for w in &self.warnings {
            let _ = writeln!(s, "warning: {w}");
        }
        s
    }
}

/// Loads both run directories and compares them.
///
/// # Errors
///
/// Returns a message when either directory's manifest or logs cannot be
/// read.
pub fn compare_run_dirs(
    base: &Path,
    cand: &Path,
    options: CompareOptions,
) -> Result<RunComparison, String> {
    let (base_manifest, base_logs) = read_run(base)?;
    let (cand_manifest, cand_logs) = read_run(cand)?;
    let mut warnings = Vec::new();
    for (label, m) in [("baseline", &base_manifest), ("candidate", &cand_manifest)] {
        if let Some(w) = m.schema_warning() {
            warnings.push(format!("{label}: {w}"));
        }
    }
    if base_manifest.options != cand_manifest.options {
        warnings.push(
            "runs used different tuning options — deltas mix configuration and code effects"
                .to_string(),
        );
    }
    if base_manifest.seed == cand_manifest.seed
        && base_manifest.model == cand_manifest.model
        && base_manifest.method != cand_manifest.method
    {
        warnings.push(format!(
            "comparing methods {} vs {} (same model and seed)",
            base_manifest.method, cand_manifest.method
        ));
    }
    let mut cmp =
        compare_logs(run_id(base), run_id(cand), &base_logs, &cand_logs, options, warnings);
    // Surrogate-quality gating applies only when BOTH runs captured model
    // diagnostics — a capture-less run is not a model regression.
    let base_mq = base.join(MODEL_QUALITY_FILE);
    let cand_mq = cand.join(MODEL_QUALITY_FILE);
    if base_mq.is_file() && cand_mq.is_file() {
        match (read_model_quality(&base_mq), read_model_quality(&cand_mq)) {
            (Ok(b), Ok(c)) => {
                cmp.model_quality = compare_model_quality(
                    &crate::model_insight::analyze(&b),
                    &crate::model_insight::analyze(&c),
                );
            }
            (b, c) => {
                for (label, r) in [("baseline", &b), ("candidate", &c)] {
                    if let Err(e) = r {
                        cmp.warnings.push(format!("{label} model quality unreadable: {e}"));
                    }
                }
            }
        }
    }
    Ok(cmp)
}

/// Core comparison over already-loaded logs (exposed for tests and the
/// report, which has the logs in hand anyway).
#[must_use]
pub fn compare_logs(
    base_id: String,
    cand_id: String,
    base_logs: &[TuningLog],
    cand_logs: &[TuningLog],
    options: CompareOptions,
    mut warnings: Vec<String>,
) -> RunComparison {
    let base_by_task: BTreeMap<&str, &TuningLog> =
        base_logs.iter().map(|l| (l.task_name.as_str(), l)).collect();
    let cand_by_task: BTreeMap<&str, &TuningLog> =
        cand_logs.iter().map(|l| (l.task_name.as_str(), l)).collect();

    let mut tasks = Vec::new();
    let mut best_base = Vec::new();
    let mut best_cand = Vec::new();
    for (i, (task, b)) in base_by_task.iter().enumerate() {
        let Some(c) = cand_by_task.get(task) else { continue };
        let bx: Vec<f64> = b.records.iter().map(|r| r.gflops).collect();
        let cx: Vec<f64> = c.records.iter().map(|r| r.gflops).collect();
        if bx.len() != cx.len() {
            warnings.push(format!(
                "task {task}: trial counts differ ({} vs {}) — using the unpaired estimator",
                bx.len(),
                cx.len()
            ));
        }
        let ci = bootstrap_mean_delta_ci(
            &bx,
            &cx,
            options.resamples,
            options.alpha,
            options.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let base_mean = mean(&bx);
        let delta_pct =
            if base_mean.abs() > f64::EPSILON { 100.0 * ci.delta / base_mean } else { 0.0 };
        let verdict = if ci.lo > 0.0 && delta_pct >= options.min_effect_pct {
            Verdict::Improved
        } else if ci.hi < 0.0 && delta_pct <= -options.min_effect_pct {
            Verdict::Regressed
        } else {
            Verdict::Noise
        };
        best_base.push(b.best_gflops());
        best_cand.push(c.best_gflops());
        tasks.push(TaskComparison {
            task: (*task).to_string(),
            base_mean,
            cand_mean: mean(&cx),
            base_best: b.best_gflops(),
            cand_best: c.best_gflops(),
            ci,
            delta_pct,
            verdict,
        });
    }
    // Tasks present on only one side cannot be bootstrapped; give them an
    // explicit incomparable row (excluded from the aggregate and from
    // `has_regressions`) instead of dropping them from the table.
    let incomparable_ci = BootstrapCi {
        delta: f64::NAN,
        lo: f64::NAN,
        hi: f64::NAN,
        confidence: 1.0 - options.alpha,
        resamples: 0,
        paired: false,
    };
    for (task, b) in &base_by_task {
        if cand_by_task.contains_key(*task) {
            continue;
        }
        let bx: Vec<f64> = b.records.iter().map(|r| r.gflops).collect();
        tasks.push(TaskComparison {
            task: (*task).to_string(),
            base_mean: mean(&bx),
            cand_mean: f64::NAN,
            base_best: b.best_gflops(),
            cand_best: f64::NAN,
            ci: incomparable_ci,
            delta_pct: f64::NAN,
            verdict: Verdict::Incomparable,
        });
    }
    for (task, c) in &cand_by_task {
        if base_by_task.contains_key(*task) {
            continue;
        }
        let cx: Vec<f64> = c.records.iter().map(|r| r.gflops).collect();
        tasks.push(TaskComparison {
            task: (*task).to_string(),
            base_mean: f64::NAN,
            cand_mean: mean(&cx),
            base_best: f64::NAN,
            cand_best: c.best_gflops(),
            ci: incomparable_ci,
            delta_pct: f64::NAN,
            verdict: Verdict::Incomparable,
        });
    }
    tasks.sort_by(|a, b| a.task.cmp(&b.task));
    let aggregate = bootstrap_mean_delta_ci(
        &best_base,
        &best_cand,
        options.resamples,
        options.alpha,
        options.seed,
    );
    RunComparison {
        base_id,
        cand_id,
        tasks,
        only_in_base: base_by_task
            .keys()
            .filter(|t| !cand_by_task.contains_key(**t))
            .map(ToString::to_string)
            .collect(),
        only_in_cand: cand_by_task
            .keys()
            .filter(|t| !base_by_task.contains_key(**t))
            .map(ToString::to_string)
            .collect(),
        aggregate,
        options,
        model_quality: Vec::new(),
        warnings,
    }
}

fn read_run(path: &Path) -> Result<(RunManifest, Vec<TuningLog>), String> {
    if !path.is_dir() {
        return Err(format!("{} is not a run directory", path.display()));
    }
    // `RunDir::create` reuses an existing directory; the guard above keeps
    // a typo from silently materializing an empty one.
    let dir = RunDir::create(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let manifest =
        dir.read_manifest().map_err(|e| format!("bad manifest in {}: {e}", path.display()))?;
    let logs = dir.read_logs().map_err(|e| format!("bad logs in {}: {e}", path.display()))?;
    Ok((manifest, logs))
}

fn run_id(path: &Path) -> String {
    path.file_name()
        .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use active_learning::TrialRecord;

    fn log(task: &str, gflops: impl IntoIterator<Item = f64>) -> TuningLog {
        let mut l = TuningLog::new(task, "bted+bao");
        let mut best: f64 = 0.0;
        for (i, g) in gflops.into_iter().enumerate() {
            best = best.max(g);
            l.records.push(TrialRecord {
                trial: i,
                config_index: i as u64,
                gflops: g,
                latency_s: 1e-4,
                best_gflops: best,
            });
        }
        l
    }

    fn wavy(n: usize, level: f64) -> Vec<f64> {
        (0..n).map(|i| level + ((i * 13) % 7) as f64).collect()
    }

    #[test]
    fn identical_runs_are_all_noise() {
        let logs = vec![log("m.T1", wavy(40, 100.0)), log("m.T2", wavy(40, 50.0))];
        let cmp = compare_logs(
            "a".into(),
            "b".into(),
            &logs,
            &logs,
            CompareOptions::default(),
            Vec::new(),
        );
        assert_eq!(cmp.count(Verdict::Noise), 2);
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.aggregate.delta, 0.0);
    }

    #[test]
    fn a_clear_slowdown_is_flagged_as_regression() {
        let base = vec![log("m.T1", wavy(40, 100.0)), log("m.T2", wavy(40, 50.0))];
        let cand = vec![log("m.T1", wavy(40, 80.0)), log("m.T2", wavy(40, 50.0))];
        let cmp = compare_logs(
            "a".into(),
            "b".into(),
            &base,
            &cand,
            CompareOptions::default(),
            Vec::new(),
        );
        assert!(cmp.has_regressions());
        let t1 = cmp.tasks.iter().find(|t| t.task == "m.T1").unwrap();
        assert_eq!(t1.verdict, Verdict::Regressed);
        assert!(t1.delta_pct < -15.0, "{}", t1.delta_pct);
        let t2 = cmp.tasks.iter().find(|t| t.task == "m.T2").unwrap();
        assert_eq!(t2.verdict, Verdict::Noise);
        let text = cmp.render();
        assert!(text.contains("regressed"), "{text}");
    }

    #[test]
    fn a_clear_speedup_is_flagged_as_improvement() {
        let base = vec![log("m.T1", wavy(40, 100.0))];
        let cand = vec![log("m.T1", wavy(40, 130.0))];
        let cmp = compare_logs(
            "a".into(),
            "b".into(),
            &base,
            &cand,
            CompareOptions::default(),
            Vec::new(),
        );
        assert_eq!(cmp.tasks[0].verdict, Verdict::Improved);
    }

    #[test]
    fn significant_but_tiny_shifts_stay_noise() {
        // A constant +0.2% shift: every bootstrap resample is positive, so
        // the CI excludes zero — but the effect floor keeps it noise.
        let base = vec![log("m.T1", vec![100.0; 50])];
        let cand = vec![log("m.T1", vec![100.2; 50])];
        let cmp = compare_logs(
            "a".into(),
            "b".into(),
            &base,
            &cand,
            CompareOptions::default(),
            Vec::new(),
        );
        assert!(cmp.tasks[0].ci.excludes_zero());
        assert_eq!(cmp.tasks[0].verdict, Verdict::Noise);
    }

    #[test]
    fn unmatched_tasks_are_reported_not_compared() {
        let base = vec![log("m.T1", wavy(10, 10.0)), log("m.T9", wavy(10, 10.0))];
        let cand = vec![log("m.T1", wavy(10, 10.0)), log("m.T5", wavy(10, 10.0))];
        let cmp = compare_logs(
            "a".into(),
            "b".into(),
            &base,
            &cand,
            CompareOptions::default(),
            Vec::new(),
        );
        assert_eq!(cmp.tasks.len(), 3, "unmatched tasks get explicit rows");
        assert_eq!(cmp.count(Verdict::Incomparable), 2);
        assert_eq!(cmp.only_in_base, vec!["m.T9".to_string()]);
        assert_eq!(cmp.only_in_cand, vec!["m.T5".to_string()]);
        let t5 = cmp.tasks.iter().find(|t| t.task == "m.T5").unwrap();
        assert_eq!(t5.verdict, Verdict::Incomparable);
        assert!(t5.base_mean.is_nan() && t5.cand_mean > 0.0);
        let t9 = cmp.tasks.iter().find(|t| t.task == "m.T9").unwrap();
        assert!(t9.cand_mean.is_nan() && t9.base_mean > 0.0);
        assert!(!cmp.has_regressions(), "incomparable must not gate CI");
        let text = cmp.render();
        assert!(text.contains("only in baseline"));
        assert!(text.contains("incomparable"), "{text}");
        // Rows are still sorted by task name, incomparable interleaved.
        let names: Vec<&str> = cmp.tasks.iter().map(|t| t.task.as_str()).collect();
        assert_eq!(names, ["m.T1", "m.T5", "m.T9"]);
    }

    #[test]
    fn rank_correlation_drop_is_a_gated_regression() {
        use active_learning::ModelPredRecord;

        // Predictions ranked by `corr`: +1 tracks measurements, −1 inverts.
        let stream = |corr: f64| -> Vec<ModelPredRecord> {
            (0..12)
                .map(|i| {
                    let g = 50.0 + i as f64;
                    ModelPredRecord {
                        task: "m.T1".to_string(),
                        round: i / 4,
                        trial: i,
                        config_index: i as u64,
                        predicted_mean: Some(100.0 + corr * g),
                        predicted_std: None,
                        acquisition: None,
                        measured_gflops: g,
                    }
                })
                .collect()
        };
        let good = crate::model_insight::analyze(&stream(1.0));
        let bad = crate::model_insight::analyze(&stream(-1.0));

        let mq = compare_model_quality(&good, &bad);
        assert_eq!(mq.len(), 1);
        assert!(mq[0].regressed, "+1 → −1 rank corr must regress");
        assert!(!compare_model_quality(&good, &good)[0].regressed);

        // The model-quality verdict flows into CI gating even when the
        // trial outcomes themselves are identical.
        let logs = vec![log("m.T1", wavy(40, 100.0))];
        let mut cmp = compare_logs(
            "a".into(),
            "b".into(),
            &logs,
            &logs,
            CompareOptions::default(),
            Vec::new(),
        );
        assert!(!cmp.has_regressions());
        cmp.model_quality = mq;
        assert!(cmp.has_regressions(), "model regression must gate");
        let text = cmp.render();
        assert!(text.contains("model quality"), "{text}");
        assert!(text.contains("regressed"), "{text}");
    }

    #[test]
    fn blind_runs_have_no_model_quality_to_compare() {
        use active_learning::ModelPredRecord;
        let blind: Vec<ModelPredRecord> = (0..8)
            .map(|i| ModelPredRecord {
                task: "m.T1".to_string(),
                round: 0,
                trial: i,
                config_index: i as u64,
                predicted_mean: None,
                predicted_std: None,
                acquisition: None,
                measured_gflops: 50.0 + i as f64,
            })
            .collect();
        let b = crate::model_insight::analyze(&blind);
        assert!(compare_model_quality(&b, &b).is_empty());
    }

    #[test]
    fn differing_trial_counts_warn_and_use_unpaired() {
        let base = vec![log("m.T1", wavy(30, 100.0))];
        let cand = vec![log("m.T1", wavy(45, 100.0))];
        let cmp = compare_logs(
            "a".into(),
            "b".into(),
            &base,
            &cand,
            CompareOptions::default(),
            Vec::new(),
        );
        assert!(!cmp.tasks[0].ci.paired);
        assert!(cmp.warnings.iter().any(|w| w.contains("trial counts differ")));
    }
}

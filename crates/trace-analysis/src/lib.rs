//! Cross-run analysis for aaltune: the run registry, statistical
//! regression detection, and self-contained HTML tuning reports.
//!
//! The telemetry crate records what *one* run did; this crate answers
//! questions that span runs:
//!
//! - **Registry** ([`registry`]): every `tune --out` / experiment run
//!   appends a [`registry::RunEntry`] to an `index.jsonl`, so `aaltune
//!   runs` can list and filter the history of tuning runs on a machine.
//! - **Comparison** ([`compare`]): `aaltune compare A B` aligns two run
//!   directories task-by-task and bootstraps confidence intervals over the
//!   recorded trial outcomes ([`stats`]), classifying each task as
//!   improved, regressed, or noise — the basis for CI gating via
//!   `--fail-on-regress`.
//! - **Reports** ([`report`]): `aaltune report RUN [BASELINE]` renders one
//!   self-contained HTML file with convergence curves, a per-phase
//!   flamegraph, and the BAO/SA adaptation panels, reconstructed from the
//!   trace by [`trace`].

#![warn(missing_docs)]

pub mod compare;
pub mod registry;
pub mod report;
pub mod stats;
pub mod trace;

pub use compare::{
    compare_logs, compare_run_dirs, CompareOptions, RunComparison, TaskComparison, Verdict,
};
pub use registry::{
    git_describe, Registry, RegistryIndex, RunEntry, RunStatus, REGISTRY_SCHEMA_VERSION,
    STALE_AFTER_MS,
};
pub use report::{render_report, LoadedRun};
pub use stats::{bootstrap_mean_delta_ci, mean, variance, BootstrapCi};
pub use trace::{FlameNode, TraceData};

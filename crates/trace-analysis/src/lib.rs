//! Cross-run analysis for aaltune: the run registry, statistical
//! regression detection, and self-contained HTML tuning reports.
//!
//! The telemetry crate records what *one* run did; this crate answers
//! questions that span runs:
//!
//! - **Registry** ([`registry`]): every `tune --out` / experiment run
//!   appends a [`registry::RunEntry`] to an `index.jsonl`, so `aaltune
//!   runs` can list and filter the history of tuning runs on a machine.
//! - **Comparison** ([`compare`]): `aaltune compare A B` aligns two run
//!   directories task-by-task and bootstraps confidence intervals over the
//!   recorded trial outcomes ([`stats`]), classifying each task as
//!   improved, regressed, or noise — the basis for CI gating via
//!   `--fail-on-regress`.
//! - **Reports** ([`report`]): `aaltune report RUN [BASELINE]` renders one
//!   self-contained HTML file with convergence curves, a per-phase
//!   flamegraph, and the BAO/SA adaptation panels, reconstructed from the
//!   trace by [`trace`].
//! - **Model insight** ([`model_insight`]): `aaltune explain RUN` scores
//!   the surrogate round by round — rank correlation, top-k recall,
//!   calibration error, cumulative regret — from the run's
//!   `model_quality.jsonl` capture stream.

#![warn(missing_docs)]

pub mod compare;
pub mod model_insight;
pub mod registry;
pub mod report;
pub mod stats;
pub mod trace;

pub use compare::{
    compare_logs, compare_model_quality, compare_run_dirs, CompareOptions, ModelQualityComparison,
    RunComparison, TaskComparison, Verdict, RANK_CORR_REGRESS_DROP,
};
pub use model_insight::{
    analyze, render_explain, RoundQuality, TaskModelQuality, TOP_K, TRUST_RANK_CORR,
};
pub use registry::{
    git_describe, Registry, RegistryIndex, RunEntry, RunStatus, REGISTRY_SCHEMA_VERSION,
    STALE_AFTER_MS,
};
pub use report::{render_report, LoadedRun};
pub use stats::{bootstrap_mean_delta_ci, mean, variance, BootstrapCi};
pub use trace::{FlameNode, TraceData};

//! The run registry: an append-only `index.jsonl` over run directories.
//!
//! Every producer of tuning results — `aaltune tune --out`, the `fig4` /
//! `table1` experiment binaries — appends one [`RunEntry`] per run, so ad-hoc
//! runs and paper experiments live in one queryable index. Entries carry the
//! manifest facts (model, arm, seed, budget, git-describe, wall time) plus
//! the headline metrics extracted from the run's logs, which makes listing
//! and filtering possible without re-reading every run directory.
//!
//! The index is *append-only*: re-running a configuration appends a fresh
//! entry, and [`Registry::load`] keeps the last entry per run id, so the
//! index doubles as a history while reads see current state.

use crate::stats::mean;
use active_learning::{RunDir, TuningLog};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, Write as _};
use std::path::{Path, PathBuf};

/// Version of the registry entry format. Readers warn on newer entries
/// instead of silently misreading them; entries with no version read as 1.
///
/// v2 added the measurement-health fields (`faults`, `retries`,
/// `quarantined`, `resumed`), all optional so v1 entries still parse.
///
/// v3 added the liveness fields (`last_heartbeat_unix_ms`, `trials_done`),
/// read from the run's `metrics.snapshot.json` / `run.heartbeat` events, so
/// `aaltune runs` can tell a live run from a stale/crashed one. Also
/// optional; older entries simply render no status.
///
/// v4 added the tuning-database provenance (`db_path`, `db_policy`, from
/// the manifest) and consumption counters (`db_hits`, `db_warm_starts`,
/// from the trace), so `aaltune runs` shows which results were served or
/// seeded from a store. All optional; database-less runs leave them unset.
pub const REGISTRY_SCHEMA_VERSION: u32 = 4;

/// A run whose last heartbeat is older than this, and which never recorded
/// a wall time, renders as `stale` — its process is presumed crashed or
/// wedged. Heartbeats default to 1 Hz, so 30 s is ~30 missed beats.
pub const STALE_AFTER_MS: u64 = 30_000;

/// One run in the registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunEntry {
    /// Entry format version ([`REGISTRY_SCHEMA_VERSION`] at write time).
    pub schema_version: Option<u32>,
    /// Registry key. Later entries with the same id shadow earlier ones.
    pub run_id: String,
    /// Run directory (relative to the registry root when possible); `None`
    /// for experiment entries that only produced aggregate JSON.
    pub path: Option<String>,
    /// Producer: `"tune"`, `"fig4"`, `"table1"`, ...
    pub kind: String,
    /// Model name.
    pub model: String,
    /// Method / experiment arm label.
    pub method: String,
    /// Master seed.
    pub seed: u64,
    /// Trial budget per task.
    pub n_trial: u64,
    /// `git describe --always --dirty` at run time, when available.
    pub git_describe: Option<String>,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_s: Option<f64>,
    /// Final best GFLOPS per task.
    pub task_best_gflops: BTreeMap<String, f64>,
    /// End-to-end mean latency (ms), for runs that deployed a model.
    pub latency_mean_ms: Option<f64>,
    /// End-to-end latency variance, for runs that deployed a model.
    pub latency_variance: Option<f64>,
    /// Measurement faults observed (injected or real), from the trace.
    pub faults: Option<u64>,
    /// Transient-fault retries performed, from the trace.
    pub retries: Option<u64>,
    /// Configurations quarantined as persistently crashing, from the trace.
    pub quarantined: Option<u64>,
    /// Whether the run directory was continued by `tune --resume`.
    pub resumed: Option<bool>,
    /// Wall-clock ms (Unix epoch) of the run's last observed heartbeat —
    /// from `metrics.snapshot.json` or the trace's `run.heartbeat` events.
    pub last_heartbeat_unix_ms: Option<u64>,
    /// Live trials measured as of the last heartbeat.
    pub trials_done: Option<u64>,
    /// Tuning database the run consulted, from the manifest provenance.
    pub db_path: Option<String>,
    /// Database consultation policy (`"serve"` or `"warm"`).
    pub db_policy: Option<String>,
    /// Exact-hit lookups during the run, from the trace's `db.hit` counter.
    pub db_hits: Option<u64>,
    /// Tasks whose initial set was database-seeded (`db.warm_start`).
    pub db_warm_starts: Option<u64>,
}

/// Liveness classification of a registry entry, derived from its recorded
/// wall time and last heartbeat. See [`RunEntry::status_at`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The run recorded a final wall time: it finished.
    Done,
    /// Heartbeats are recent — the run is executing right now.
    Live,
    /// The run never finished and heartbeats stopped this many ms ago:
    /// presumed crashed or wedged.
    Stale(u64),
    /// No wall time and no heartbeat data (pre-v3 entry or snapshotting
    /// disabled): liveness is unknown.
    Unknown,
}

impl std::fmt::Display for RunStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunStatus::Done => write!(f, "done"),
            RunStatus::Live => write!(f, "live"),
            RunStatus::Stale(age_ms) => write!(f, "stale {}s", age_ms / 1000),
            RunStatus::Unknown => write!(f, "-"),
        }
    }
}

impl RunEntry {
    /// The declared format version, defaulting pre-versioning entries to 1.
    #[must_use]
    pub fn schema_version(&self) -> u32 {
        self.schema_version.unwrap_or(1)
    }

    /// Mean of the per-task best GFLOPS (0.0 with no tasks).
    #[must_use]
    pub fn mean_best_gflops(&self) -> f64 {
        let xs: Vec<f64> = self.task_best_gflops.values().copied().collect();
        mean(&xs)
    }

    /// Classifies the run's liveness as of wall-clock `now_ms` (Unix epoch
    /// milliseconds): a recorded wall time means done; otherwise recent
    /// heartbeats mean live, old ones mean stale, none means unknown.
    #[must_use]
    pub fn status_at(&self, now_ms: u64) -> RunStatus {
        if self.wall_time_s.is_some() {
            return RunStatus::Done;
        }
        match self.last_heartbeat_unix_ms {
            None => RunStatus::Unknown,
            Some(hb) => {
                let age = now_ms.saturating_sub(hb);
                if age <= STALE_AFTER_MS {
                    RunStatus::Live
                } else {
                    RunStatus::Stale(age)
                }
            }
        }
    }

    /// Builds an entry from a `tune --out` run directory: manifest facts
    /// plus per-task best GFLOPS from the logs. `run_id` is the directory
    /// name.
    ///
    /// # Errors
    ///
    /// Returns a message when the manifest or a log cannot be read.
    pub fn from_run_dir(path: &Path) -> Result<RunEntry, String> {
        if !path.is_dir() {
            return Err(format!("{} is not a run directory", path.display()));
        }
        let dir =
            RunDir::create(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        let manifest =
            dir.read_manifest().map_err(|e| format!("bad manifest in {}: {e}", path.display()))?;
        let logs: Vec<TuningLog> =
            dir.read_logs().map_err(|e| format!("bad logs in {}: {e}", path.display()))?;
        let run_id = path
            .file_name()
            .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned());
        // Health counters come from the trace when the run wrote one;
        // trace-less (or unreadable-trace) runs leave them unset.
        let trace = crate::trace::TraceData::load(&dir.trace_path()).ok().flatten();
        let health = trace.as_ref().map(|t| telemetry::TraceSummary::from_records(&t.records));
        let counter =
            |name: &str| health.as_ref().map(|s| s.counters.get(name).copied().unwrap_or(0));
        // Liveness: prefer the (atomically rewritten, hence freshest)
        // metrics snapshot; fall back to the trace's heartbeat events.
        let snapshot: Option<telemetry::MetricsSnapshot> =
            std::fs::read_to_string(dir.snapshot_path())
                .ok()
                .and_then(|s| serde_json::from_str(&s).ok());
        let trace_heartbeat = trace
            .as_ref()
            .and_then(|t| t.records.iter().rev().find_map(telemetry::HeartbeatEvent::from_record));
        let (last_heartbeat_unix_ms, trials_done) = match (&snapshot, &trace_heartbeat) {
            (Some(s), hb) => (
                Some(s.unix_ms.max(hb.as_ref().map_or(0, |h| h.unix_ms))),
                Some(s.counter(telemetry::stream::TRIALS_COUNTER)),
            ),
            (None, Some(h)) => (Some(h.unix_ms), Some(h.trials)),
            (None, None) => (None, None),
        };
        Ok(RunEntry {
            schema_version: Some(REGISTRY_SCHEMA_VERSION),
            run_id,
            path: Some(path.display().to_string()),
            kind: "tune".to_string(),
            model: manifest.model.clone(),
            method: manifest.method.clone(),
            seed: manifest.seed,
            n_trial: manifest.options.n_trial as u64,
            git_describe: manifest.git_describe.clone(),
            wall_time_s: manifest.wall_time_s,
            task_best_gflops: logs.iter().map(|l| (l.task_name.clone(), l.best_gflops())).collect(),
            latency_mean_ms: None,
            latency_variance: None,
            faults: counter("measure.fault"),
            retries: counter("measure.retry"),
            quarantined: counter("measure.quarantine"),
            resumed: manifest.resumed,
            last_heartbeat_unix_ms,
            trials_done,
            db_path: manifest.db.as_ref().map(|d| d.path.clone()),
            db_policy: manifest.db.as_ref().map(|d| d.policy.clone()),
            db_hits: counter("db.hit"),
            db_warm_starts: counter("db.warm_start"),
        })
    }
}

/// Handle on one registry index file.
#[derive(Debug, Clone)]
pub struct Registry {
    index: PathBuf,
}

/// Result of reading an index: current entries plus hygiene counters.
#[derive(Debug, Default)]
pub struct RegistryIndex {
    /// Last entry per run id, in first-seen order.
    pub entries: Vec<RunEntry>,
    /// Lines that failed to parse (corrupt or truncated appends).
    pub malformed_lines: u64,
    /// Entries declaring a schema version newer than supported.
    pub newer_schema_entries: u64,
}

impl Registry {
    /// The registry rooted at `root`: its index is `<root>/index.jsonl`.
    #[must_use]
    pub fn at(root: impl Into<PathBuf>) -> Registry {
        Registry { index: root.into().join("index.jsonl") }
    }

    /// Path of the index file.
    #[must_use]
    pub fn index_path(&self) -> &Path {
        &self.index
    }

    /// Appends one entry (creating the root directory and index on first
    /// use).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn append(&self, entry: &RunEntry) -> std::io::Result<()> {
        if let Some(parent) = self.index.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&self.index)?;
        // aal-lint: allow(unwrap, reason = "RunEntry is a plain data struct; serialization cannot fail")
        writeln!(f, "{}", serde_json::to_string(entry).expect("entry serializes"))
    }

    /// Reads the index. Corrupt lines are counted, not fatal; duplicate run
    /// ids keep the last (newest) entry. A missing index reads as empty.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the index not existing.
    pub fn load(&self) -> std::io::Result<RegistryIndex> {
        let f = match std::fs::File::open(&self.index) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(RegistryIndex::default())
            }
            Err(e) => return Err(e),
        };
        let mut out = RegistryIndex::default();
        let mut by_id: BTreeMap<String, usize> = BTreeMap::new();
        for line in std::io::BufReader::new(f).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<RunEntry>(&line) {
                Ok(e) => {
                    if e.schema_version() > REGISTRY_SCHEMA_VERSION {
                        out.newer_schema_entries += 1;
                    }
                    match by_id.get(&e.run_id) {
                        Some(&i) => out.entries[i] = e,
                        None => {
                            by_id.insert(e.run_id.clone(), out.entries.len());
                            out.entries.push(e);
                        }
                    }
                }
                Err(_) => out.malformed_lines += 1,
            }
        }
        Ok(out)
    }
}

impl RegistryIndex {
    /// Entries whose model/method/kind match the given filters (substring
    /// match on model so `--model mobilenet` finds `mobilenet_v1`).
    #[must_use]
    pub fn filtered(
        &self,
        model: Option<&str>,
        method: Option<&str>,
        kind: Option<&str>,
    ) -> Vec<&RunEntry> {
        self.entries
            .iter()
            .filter(|e| model.is_none_or(|m| e.model.contains(m)))
            .filter(|e| method.is_none_or(|m| e.method == m))
            .filter(|e| kind.is_none_or(|k| e.kind == k))
            .collect()
    }

    /// Renders entries as an aligned text table, classifying liveness
    /// against the current wall clock.
    #[must_use]
    pub fn render(&self, entries: &[&RunEntry]) -> String {
        self.render_at(entries, telemetry::registry::unix_ms_now())
    }

    /// [`RegistryIndex::render`] with an explicit "now" (Unix epoch ms), so
    /// liveness classification is testable.
    #[must_use]
    pub fn render_at(&self, entries: &[&RunEntry], now_ms: u64) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<40} {:<7} {:<16} {:<9} {:>5} {:>7} {:>6} {:>10} {:>12} {:>10} {:>14} {:>12} {:>10}",
            "run",
            "kind",
            "model",
            "method",
            "seed",
            "n-trial",
            "tasks",
            "GFLOPS",
            "latency(ms)",
            "wall(s)",
            "health",
            "status",
            "db"
        );
        for e in entries {
            // "f3 r1 q2 R" = 3 faults, 1 retry, 2 quarantined, resumed;
            // "-" for pre-health (v1) entries with no trace data.
            let health = match (e.faults, e.retries, e.quarantined) {
                (None, None, None) => "-".to_string(),
                (f, r, q) => format!(
                    "f{} r{} q{}{}",
                    f.unwrap_or(0),
                    r.unwrap_or(0),
                    q.unwrap_or(0),
                    if e.resumed == Some(true) { " R" } else { "" }
                ),
            };
            // "serve h3 w2" = serve policy, 3 exact hits, 2 warm-started
            // tasks; "-" for runs that attached no tuning database.
            let db = match &e.db_policy {
                None => "-".to_string(),
                Some(policy) => format!(
                    "{policy} h{} w{}",
                    e.db_hits.unwrap_or(0),
                    e.db_warm_starts.unwrap_or(0)
                ),
            };
            let _ = writeln!(
                s,
                "{:<40} {:<7} {:<16} {:<9} {:>5} {:>7} {:>6} {:>10.1} {:>12} {:>10} {:>14} {:>12} {:>10}",
                e.run_id,
                e.kind,
                e.model,
                e.method,
                e.seed,
                e.n_trial,
                e.task_best_gflops.len(),
                e.mean_best_gflops(),
                e.latency_mean_ms.map_or_else(|| "-".to_string(), |l| format!("{l:.4}")),
                e.wall_time_s.map_or_else(|| "-".to_string(), |w| format!("{w:.1}")),
                health,
                e.status_at(now_ms).to_string(),
                db,
            );
        }
        if self.malformed_lines > 0 {
            let _ = writeln!(s, "({} corrupt index line(s) skipped)", self.malformed_lines);
        }
        if self.newer_schema_entries > 0 {
            let _ = writeln!(
                s,
                "warning: {} entr(ies) declare a registry schema newer than {} — \
                 fields may be misread",
                self.newer_schema_entries, REGISTRY_SCHEMA_VERSION
            );
        }
        s
    }
}

/// `git describe --always --dirty` of the working tree at `dir`, when git
/// and a repository are available. Best-effort: failures yield `None`.
#[must_use]
pub fn git_describe(dir: &Path) -> Option<String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(dir)
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!s.is_empty()).then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, seed: u64) -> RunEntry {
        RunEntry {
            schema_version: Some(REGISTRY_SCHEMA_VERSION),
            run_id: id.to_string(),
            path: None,
            kind: "tune".to_string(),
            model: "mobilenet_v1".to_string(),
            method: "bted+bao".to_string(),
            seed,
            n_trial: 64,
            git_describe: Some("abc123".to_string()),
            wall_time_s: Some(2.0),
            task_best_gflops: [("m.T1".to_string(), 100.0), ("m.T2".to_string(), 200.0)]
                .into_iter()
                .collect(),
            latency_mean_ms: None,
            latency_variance: None,
            faults: None,
            retries: None,
            quarantined: None,
            resumed: None,
            last_heartbeat_unix_ms: None,
            trials_done: None,
            db_path: None,
            db_policy: None,
            db_hits: None,
            db_warm_starts: None,
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("aaltune-registry-{tag}-{}", std::process::id()))
    }

    #[test]
    fn append_then_load_round_trips() {
        let root = temp_root("rt");
        let _ = std::fs::remove_dir_all(&root);
        let reg = Registry::at(&root);
        reg.append(&entry("run-a", 0)).unwrap();
        reg.append(&entry("run-b", 1)).unwrap();
        let idx = reg.load().unwrap();
        assert_eq!(idx.entries.len(), 2);
        assert_eq!(idx.entries[0].run_id, "run-a");
        assert!((idx.entries[0].mean_best_gflops() - 150.0).abs() < 1e-9);
        assert_eq!(idx.malformed_lines, 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn duplicate_run_ids_keep_the_newest() {
        let root = temp_root("dup");
        let _ = std::fs::remove_dir_all(&root);
        let reg = Registry::at(&root);
        reg.append(&entry("run-a", 0)).unwrap();
        reg.append(&entry("run-a", 9)).unwrap();
        let idx = reg.load().unwrap();
        assert_eq!(idx.entries.len(), 1);
        assert_eq!(idx.entries[0].seed, 9, "later append must shadow the earlier one");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_lines_and_missing_index_are_tolerated() {
        let root = temp_root("corrupt");
        let _ = std::fs::remove_dir_all(&root);
        let reg = Registry::at(&root);
        assert!(reg.load().unwrap().entries.is_empty(), "missing index reads as empty");
        reg.append(&entry("ok", 0)).unwrap();
        std::fs::write(
            reg.index_path(),
            format!("{}\nnot json\n", serde_json::to_string(&entry("ok", 0)).unwrap()),
        )
        .unwrap();
        let idx = reg.load().unwrap();
        assert_eq!(idx.entries.len(), 1);
        assert_eq!(idx.malformed_lines, 1);
        assert!(idx.render(&idx.filtered(None, None, None)).contains("corrupt"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn filters_match_model_method_kind() {
        let root = temp_root("filter");
        let _ = std::fs::remove_dir_all(&root);
        let reg = Registry::at(&root);
        reg.append(&entry("a", 0)).unwrap();
        let mut other = entry("b", 0);
        other.model = "resnet18".to_string();
        other.method = "autotvm".to_string();
        reg.append(&other).unwrap();
        let idx = reg.load().unwrap();
        assert_eq!(idx.filtered(Some("mobilenet"), None, None).len(), 1);
        assert_eq!(idx.filtered(None, Some("autotvm"), None).len(), 1);
        assert_eq!(idx.filtered(None, None, Some("tune")).len(), 2);
        assert_eq!(idx.filtered(Some("vgg"), None, None).len(), 0);
        let table = idx.render(&idx.filtered(None, None, None));
        assert!(table.contains("resnet18"), "{table}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn status_classifies_done_live_stale_unknown() {
        let now: u64 = 1_700_000_000_000;
        let done = entry("done", 0);
        assert_eq!(done.status_at(now), RunStatus::Done);

        let mut live = entry("live", 0);
        live.wall_time_s = None;
        live.last_heartbeat_unix_ms = Some(now - 2_000);
        assert_eq!(live.status_at(now), RunStatus::Live);

        let mut stale = entry("stale", 0);
        stale.wall_time_s = None;
        stale.last_heartbeat_unix_ms = Some(now - STALE_AFTER_MS - 90_000);
        assert_eq!(stale.status_at(now), RunStatus::Stale(STALE_AFTER_MS + 90_000));
        assert_eq!(stale.status_at(now).to_string(), "stale 120s");

        let mut unknown = entry("unknown", 0);
        unknown.wall_time_s = None;
        assert_eq!(unknown.status_at(now), RunStatus::Unknown);

        // A finished run stays "done" even with an ancient heartbeat.
        let mut finished = entry("finished", 0);
        finished.last_heartbeat_unix_ms = Some(0);
        assert_eq!(finished.status_at(now), RunStatus::Done);

        let idx =
            RegistryIndex { entries: vec![done, live, stale, unknown], ..RegistryIndex::default() };
        let table = idx.render_at(&idx.entries.iter().collect::<Vec<_>>(), now);
        assert!(table.contains("status"), "{table}");
        assert!(table.contains("live"), "{table}");
        assert!(table.contains("stale 120s"), "{table}");
    }

    #[test]
    fn entry_from_run_dir_reads_heartbeat_from_trace_and_snapshot() {
        use active_learning::{RunManifest, TuneOptions, MANIFEST_SCHEMA_VERSION};
        let root = temp_root("hb").join("hb-run");
        let _ = std::fs::remove_dir_all(root.parent().unwrap());
        let dir = RunDir::create(&root).unwrap();
        dir.write_manifest(&RunManifest {
            model: "squeezenet_v1.1".into(),
            method: "autotvm".into(),
            tasks: vec!["sq.T1".into()],
            seed: 4,
            options: TuneOptions::smoke(),
            schema_version: Some(MANIFEST_SCHEMA_VERSION),
            git_describe: None,
            wall_time_s: None, // still running (or crashed)
            device: None,
            fault: None,
            resumed: None,
            workers: None,
            devices: None,
            db: None,
        })
        .unwrap();
        // No heartbeat data at all: liveness unknown.
        let e = RunEntry::from_run_dir(&root).unwrap();
        assert_eq!(e.last_heartbeat_unix_ms, None);
        assert_eq!(e.status_at(1_700_000_000_000), RunStatus::Unknown);

        // Heartbeat events in the trace surface as liveness.
        let hb = telemetry::Record::Event {
            name: "run.heartbeat".into(),
            span: None,
            t_us: 10,
            fields: serde_json::json!({
                "unix_ms": 1_700_000_000_000u64, "trials": 12u64,
                "tasks_done": 1u64, "task": "sq.T1",
            }),
        };
        let trace = [
            serde_json::to_string(&telemetry::Record::Schema { version: 2 }).unwrap(),
            serde_json::to_string(&hb).unwrap(),
        ]
        .join("\n");
        std::fs::write(dir.trace_path(), trace).unwrap();
        let e = RunEntry::from_run_dir(&root).unwrap();
        assert_eq!(e.last_heartbeat_unix_ms, Some(1_700_000_000_000));
        assert_eq!(e.trials_done, Some(12));
        assert_eq!(e.status_at(1_700_000_005_000), RunStatus::Live);

        // A fresher metrics snapshot wins over the trace heartbeat.
        let reg = telemetry::MetricsRegistry::new();
        reg.inc(telemetry::stream::TRIALS_COUNTER, 40);
        let mut snap = reg.snapshot();
        snap.unix_ms = 1_700_000_060_000;
        std::fs::write(dir.snapshot_path(), serde_json::to_string(&snap).unwrap()).unwrap();
        let e = RunEntry::from_run_dir(&root).unwrap();
        assert_eq!(e.last_heartbeat_unix_ms, Some(1_700_000_060_000));
        assert_eq!(e.trials_done, Some(40));
        std::fs::remove_dir_all(root.parent().unwrap()).unwrap();
    }

    #[test]
    fn entry_from_run_dir_extracts_headline_metrics() {
        use active_learning::{RunManifest, TrialRecord, TuneOptions, MANIFEST_SCHEMA_VERSION};
        let root = temp_root("fromdir").join("sq-autotvm-seed0");
        let _ = std::fs::remove_dir_all(root.parent().unwrap());
        let dir = RunDir::create(&root).unwrap();
        dir.write_manifest(&RunManifest {
            model: "squeezenet_v1.1".into(),
            method: "autotvm".into(),
            tasks: vec!["sq.T1".into()],
            seed: 4,
            options: TuneOptions::smoke(),
            schema_version: Some(MANIFEST_SCHEMA_VERSION),
            git_describe: None,
            wall_time_s: Some(0.5),
            device: None,
            fault: None,
            resumed: Some(true),
            workers: None,
            devices: None,
            db: None,
        })
        .unwrap();
        let mut log = TuningLog::new("sq.T1", "autotvm");
        log.records.push(TrialRecord {
            trial: 0,
            config_index: 1,
            gflops: 80.0,
            latency_s: 1e-4,
            best_gflops: 80.0,
        });
        dir.write_log(&log).unwrap();
        let e = RunEntry::from_run_dir(&root).unwrap();
        assert_eq!(e.run_id, "sq-autotvm-seed0");
        assert_eq!(e.model, "squeezenet_v1.1");
        assert_eq!(e.task_best_gflops["sq.T1"], 80.0);
        assert_eq!(e.n_trial, TuneOptions::smoke().n_trial as u64);
        assert_eq!(e.faults, None, "trace-less run leaves health unset");
        assert_eq!(e.resumed, Some(true));

        // With a trace present, the health counters come from it.
        let trace = [
            serde_json::to_string(&telemetry::Record::Schema { version: 2 }).unwrap(),
            serde_json::to_string(&telemetry::Record::Counter {
                name: "measure.fault".into(),
                value: 3,
            })
            .unwrap(),
            serde_json::to_string(&telemetry::Record::Counter {
                name: "measure.retry".into(),
                value: 2,
            })
            .unwrap(),
        ]
        .join("\n");
        std::fs::write(dir.trace_path(), trace).unwrap();
        let e = RunEntry::from_run_dir(&root).unwrap();
        assert_eq!(e.faults, Some(3));
        assert_eq!(e.retries, Some(2));
        assert_eq!(e.quarantined, Some(0));
        let idx = RegistryIndex { entries: vec![e], ..RegistryIndex::default() };
        let table = idx.render(&idx.entries.iter().collect::<Vec<_>>());
        assert!(table.contains("f3 r2 q0 R"), "{table}");
        std::fs::remove_dir_all(root.parent().unwrap()).unwrap();
    }
}

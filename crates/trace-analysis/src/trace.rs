//! Reconstructing analysis-ready series from a raw JSONL trace.
//!
//! [`TraceSummary`](telemetry::TraceSummary) aggregates a trace into tables;
//! this module keeps the *sequence*: per-task trial series (convergence
//! curves), the span tree with durations (flamegraph input), and the BAO /
//! SA adaptation series, all recovered from the flat record stream.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;
use telemetry::events::{RadiusEvent, SaDoneEvent, TrialEvent, TuneStartEvent};
use telemetry::Record;

/// A trace loaded back into memory, with the same robustness contract as
/// [`telemetry::TraceSummary::from_reader`]: corrupt, truncated, or
/// non-UTF-8 lines are counted and skipped, never fatal mid-file.
#[derive(Debug, Default, Clone)]
pub struct TraceData {
    /// Every record that parsed, in emission order.
    pub records: Vec<Record>,
    /// Lines that failed to parse.
    pub malformed_lines: u64,
    /// Declared wire-format version (`None` for pre-versioning traces).
    pub schema_version: Option<u32>,
}

impl TraceData {
    /// Parses a JSONL trace stream.
    ///
    /// # Errors
    ///
    /// Only the very first read failing surfaces as an error; later I/O
    /// failures count as truncation.
    pub fn from_reader(mut reader: impl BufRead) -> std::io::Result<TraceData> {
        let mut out = TraceData::default();
        let mut buf = Vec::new();
        let mut first_read = true;
        loop {
            buf.clear();
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) if !first_read => {
                    out.malformed_lines += 1;
                    break;
                }
                Err(e) => return Err(e),
            }
            first_read = false;
            let Ok(line) = std::str::from_utf8(&buf) else {
                out.malformed_lines += 1;
                continue;
            };
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<Record>(line) {
                Ok(Record::Schema { version }) => {
                    out.schema_version = Some(version);
                    // Kept in the stream: schema markers delimit process
                    // segments, which segment-aware consumers
                    // ([`telemetry::TraceSummary`]) need to sum counters
                    // across a resumed run correctly.
                    out.records.push(Record::Schema { version });
                }
                Ok(r) => out.records.push(r),
                Err(_) => out.malformed_lines += 1,
            }
        }
        Ok(out)
    }

    /// Loads `path`; a missing file reads as `None` (old run directories
    /// have no trace), any other I/O failure is an error.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the file not existing.
    pub fn load(path: &Path) -> std::io::Result<Option<TraceData>> {
        match std::fs::File::open(path) {
            Ok(f) => TraceData::from_reader(std::io::BufReader::new(f)).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Same warning rule as [`telemetry::TraceSummary::schema_warning`].
    #[must_use]
    pub fn schema_warning(&self) -> Option<String> {
        match self.schema_version {
            Some(v) if v > telemetry::TRACE_SCHEMA_VERSION => Some(format!(
                "trace declares schema version {v}, newer than the supported {} — \
                 fields may be misread",
                telemetry::TRACE_SCHEMA_VERSION
            )),
            _ => None,
        }
    }

    /// Trial events grouped by the task that emitted them.
    ///
    /// A `trial` event does not carry its task name; it carries the id of
    /// the innermost span open when it fired. Each `tune.start` event marks
    /// its span as belonging to a task, so attribution walks the span
    /// parent chain from the trial's span up to the nearest task-marked
    /// ancestor. Trials with no such ancestor group under
    /// `"(unattributed)"`.
    #[must_use]
    pub fn task_series(&self) -> BTreeMap<String, Vec<TrialEvent>> {
        let mut parent_of: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        let mut task_of_span: BTreeMap<u64, String> = BTreeMap::new();
        let mut out: BTreeMap<String, Vec<TrialEvent>> = BTreeMap::new();
        for rec in &self.records {
            if let Record::SpanStart { id, parent, .. } = rec {
                parent_of.insert(*id, *parent);
                continue;
            }
            if let Some(start) = TuneStartEvent::from_record(rec) {
                if let Some(span) = start.span {
                    task_of_span.insert(span, start.task.clone());
                }
                out.entry(start.task).or_default();
                continue;
            }
            if let Some(trial) = TrialEvent::from_record(rec) {
                let mut cursor = trial.span;
                let mut task = None;
                // Bounded walk: a cycle in parent links (corrupt trace)
                // must not hang the report.
                for _ in 0..64 {
                    let Some(id) = cursor else { break };
                    if let Some(t) = task_of_span.get(&id) {
                        task = Some(t.clone());
                        break;
                    }
                    cursor = parent_of.get(&id).copied().flatten();
                }
                out.entry(task.unwrap_or_else(|| "(unattributed)".to_string()))
                    .or_default()
                    .push(trial);
            }
        }
        out
    }

    /// All BAO radius-adaptation events, in emission order.
    #[must_use]
    pub fn radius_series(&self) -> Vec<RadiusEvent> {
        self.records.iter().filter_map(RadiusEvent::from_record).collect()
    }

    /// All SA search summaries, in emission order.
    #[must_use]
    pub fn sa_series(&self) -> Vec<SaDoneEvent> {
        self.records.iter().filter_map(SaDoneEvent::from_record).collect()
    }

    /// The aggregated span tree: children with the same name path merge,
    /// so repeated phases (512 `measure` spans) become one node with a
    /// count. The synthetic root's total is the sum of its children.
    #[must_use]
    pub fn flame_tree(&self) -> FlameNode {
        let mut open: BTreeMap<u64, (String, Option<u64>)> = BTreeMap::new();
        let mut root = FlameNode::new("run");
        for rec in &self.records {
            match rec {
                Record::SpanStart { id, parent, name, .. } => {
                    open.insert(*id, (name.clone(), *parent));
                }
                Record::SpanEnd { id, name, dur_us, .. } => {
                    // Children close before parents, so every ancestor is
                    // still in `open` and the full name path is available.
                    let (name, parent) = open.remove(id).unwrap_or_else(|| (name.clone(), None));
                    let mut path = vec![name];
                    let mut cursor = parent;
                    for _ in 0..64 {
                        let Some(pid) = cursor else { break };
                        let Some((pname, pparent)) = open.get(&pid) else { break };
                        path.push(pname.clone());
                        cursor = *pparent;
                    }
                    path.reverse();
                    let mut node = &mut root;
                    for seg in path {
                        node = node.child_mut(&seg);
                    }
                    node.total_us += dur_us;
                    node.count += 1;
                }
                _ => {}
            }
        }
        root.total_us = root.children.iter().map(|c| c.total_us).sum();
        root
    }
}

/// One node of the aggregated span tree.
#[derive(Debug, Clone, Default)]
pub struct FlameNode {
    /// Span name (the synthetic root is `"run"`).
    pub name: String,
    /// Summed wall time of all spans merged into this node, µs.
    pub total_us: u64,
    /// How many spans merged into this node.
    pub count: u64,
    /// Child phases, in first-seen order.
    pub children: Vec<FlameNode>,
}

impl FlameNode {
    fn new(name: &str) -> FlameNode {
        FlameNode { name: name.to_string(), ..FlameNode::default() }
    }

    fn child_mut(&mut self, name: &str) -> &mut FlameNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            &mut self.children[i]
        } else {
            self.children.push(FlameNode::new(name));
            // aal-lint: allow(unwrap, reason = "a child was pushed on the line above")
            self.children.last_mut().expect("just pushed")
        }
    }

    /// Wall time not attributed to any child, µs.
    #[must_use]
    pub fn self_us(&self) -> u64 {
        self.total_us.saturating_sub(self.children.iter().map(|c| c.total_us).sum())
    }

    /// Depth of the tree below (and including) this node.
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(FlameNode::depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use telemetry::events::{TRIAL_EVENT, TUNE_START_EVENT};

    fn start(id: u64, parent: Option<u64>, name: &str, t: u64) -> Record {
        Record::SpanStart { id, parent, name: name.into(), t_us: t }
    }

    fn end(id: u64, name: &str, t: u64, dur: u64) -> Record {
        Record::SpanEnd { id, name: name.into(), t_us: t, dur_us: dur }
    }

    fn tune_start(span: u64, task: &str) -> Record {
        Record::Event {
            name: TUNE_START_EVENT.into(),
            span: Some(span),
            t_us: 0,
            fields: json!({"task": task, "method": "bted+bao", "seed": 0u64, "n_trial": 4u64}),
        }
    }

    fn trial(span: Option<u64>, n: u64, best: f64) -> Record {
        Record::Event {
            name: TRIAL_EVENT.into(),
            span,
            t_us: n,
            fields: json!({
                "trial": n, "config_index": n, "gflops": best,
                "best_gflops": best, "improved": true,
            }),
        }
    }

    fn two_task_trace() -> TraceData {
        // tune_task(m.T1) > bted > (trials); then tune_task(m.T2) > trials.
        let records = vec![
            start(1, None, "tune_task", 0),
            tune_start(1, "m.T1"),
            start(2, Some(1), "bted", 1),
            trial(Some(2), 0, 10.0),
            trial(Some(2), 1, 12.0),
            end(2, "bted", 50, 49),
            end(1, "tune_task", 60, 60),
            start(3, None, "tune_task", 70),
            tune_start(3, "m.T2"),
            trial(Some(3), 0, 99.0),
            end(3, "tune_task", 90, 20),
        ];
        TraceData { records, ..TraceData::default() }
    }

    #[test]
    fn trials_attribute_to_tasks_through_span_parents() {
        let series = two_task_trace().task_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series["m.T1"].len(), 2);
        assert_eq!(series["m.T1"][1].best_gflops, 12.0);
        assert_eq!(series["m.T2"].len(), 1);
        assert_eq!(series["m.T2"][0].best_gflops, 99.0);
    }

    #[test]
    fn orphan_trials_group_as_unattributed() {
        let data = TraceData { records: vec![trial(None, 0, 5.0)], ..TraceData::default() };
        let series = data.task_series();
        assert_eq!(series["(unattributed)"].len(), 1);
    }

    #[test]
    fn flame_tree_merges_same_name_paths() {
        let data = two_task_trace();
        let tree = data.flame_tree();
        assert_eq!(tree.children.len(), 1, "both tune_task spans merge");
        let tune = &tree.children[0];
        assert_eq!(tune.name, "tune_task");
        assert_eq!(tune.count, 2);
        assert_eq!(tune.total_us, 80);
        assert_eq!(tune.children[0].name, "bted");
        assert_eq!(tune.children[0].total_us, 49);
        assert_eq!(tune.self_us(), 80 - 49);
        assert_eq!(tree.total_us, 80);
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn loader_skips_corrupt_lines_and_keeps_schema_markers() {
        let jsonl = format!(
            "{}\nnot json\n{}\n",
            serde_json::to_string(&Record::Schema { version: 1 }).unwrap(),
            serde_json::to_string(&Record::Counter { name: "c".into(), value: 3 }).unwrap(),
        );
        let data = TraceData::from_reader(jsonl.as_bytes()).unwrap();
        assert_eq!(data.schema_version, Some(1));
        assert_eq!(data.malformed_lines, 1);
        // Schema markers stay in the stream (they delimit process segments
        // for resumed-run counter summing).
        assert_eq!(data.records.len(), 2);
        assert!(matches!(data.records[0], Record::Schema { version: 1 }));
        assert!(data.schema_warning().is_none());
        let future = TraceData { schema_version: Some(99), ..TraceData::default() };
        assert!(future.schema_warning().unwrap().contains("newer"));
    }

    #[test]
    fn missing_trace_file_loads_as_none() {
        let path = std::env::temp_dir().join("aaltune-no-such-trace.jsonl");
        assert!(TraceData::load(&path).unwrap().is_none());
    }
}

//! Surrogate-model introspection: how good was the cost model, round by
//! round?
//!
//! The tuning loop's trial log records *what* was measured; the capture
//! stream (`model_quality.jsonl`) records what the surrogate *expected*.
//! This module joins the two into per-round quality metrics:
//!
//! - **Rank correlation** (Spearman) between predicted and measured GFLOPS
//!   — the metric that matters for selection, since only the ordering of
//!   candidates drives the proposer.
//! - **Top-k recall** — of the round's k best measured configs, how many
//!   the model also ranked in its top k.
//! - **Calibration error** — |coverage(|z| ≤ 1) − 0.683| over trials with
//!   a predictive std: a well-calibrated Gaussian puts ~68.3% of outcomes
//!   within one predicted std.
//! - **Cumulative regret** — Σ (best-known − measured) over all trials so
//!   far: a trustworthy model stops paying for bad proposals early.
//!
//! `aaltune explain RUN_DIR` renders these as a per-task table with a
//! plain-language verdict ("model untrustworthy until round N").

use active_learning::ModelPredRecord;
use gbt::metrics::spearman;

/// Cumulative rank correlation at or above which the model's ordering is
/// considered trustworthy (the verdict line's threshold).
pub const TRUST_RANK_CORR: f64 = 0.5;

/// Expected |z| ≤ 1 coverage of a calibrated Gaussian predictor.
pub const GAUSSIAN_ONE_SIGMA: f64 = 0.683;

/// Candidates per round counted for top-k recall (capped by round size).
pub const TOP_K: usize = 3;

/// Model-quality metrics for one refit round of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundQuality {
    /// 0-based refit round.
    pub round: usize,
    /// Trials measured this round.
    pub trials: usize,
    /// Trials this round the model had an opinion on (predicted mean).
    pub with_opinion: usize,
    /// Spearman correlation of this round's predictions vs measurements
    /// (`None` below 3 opinionated trials — a 2-point ordering is noise).
    pub rank_corr: Option<f64>,
    /// Spearman over *all* opinionated trials up to and including this
    /// round (`None` below 2 pairs).
    pub cum_rank_corr: Option<f64>,
    /// Top-k recall within this round (`None` when the round has fewer
    /// than 2 opinionated trials).
    pub top_k_recall: Option<f64>,
    /// Cumulative |z|-coverage calibration error (`None` until some trial
    /// carries a predictive std).
    pub calibration_err: Option<f64>,
    /// Σ (best-known − measured) over all trials so far, GFLOPS.
    pub cum_regret: f64,
    /// Best measured GFLOPS up to and including this round.
    pub best_gflops: f64,
}

/// Per-task model-quality summary: one [`RoundQuality`] per refit round.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskModelQuality {
    /// Task name.
    pub task: String,
    /// Per-round metrics, in round order.
    pub rounds: Vec<RoundQuality>,
    /// Trials captured in total.
    pub trials: usize,
    /// Final cumulative rank correlation (`None` if the model never had
    /// 2+ opinions — e.g. a pure random run).
    pub final_rank_corr: Option<f64>,
    /// Mean of the per-round top-k recalls (`None` if no round had one).
    pub mean_top_k_recall: Option<f64>,
    /// Final cumulative calibration error (`None` without predictive stds).
    pub final_calibration_err: Option<f64>,
    /// Total regret vs the best-known config, GFLOPS.
    pub total_regret: f64,
    /// First round whose cumulative rank correlation reached
    /// [`TRUST_RANK_CORR`] (`None` if it never did).
    pub trustworthy_from: Option<usize>,
}

/// Joins capture records into per-task, per-round quality metrics.
///
/// Records are grouped by task in first-appearance order; within a task
/// they are expected in trial order (the order the loop emitted them).
/// Failed trials (`measured_gflops <= 0`) count toward regret but are
/// excluded from correlation and calibration — a crashed launch says
/// nothing about the model's ordering.
#[must_use]
pub fn analyze(records: &[ModelPredRecord]) -> Vec<TaskModelQuality> {
    let mut task_order: Vec<&str> = Vec::new();
    for r in records {
        if !task_order.contains(&r.task.as_str()) {
            task_order.push(&r.task);
        }
    }
    task_order
        .into_iter()
        .map(|name| {
            let recs: Vec<&ModelPredRecord> = records.iter().filter(|r| r.task == name).collect();
            analyze_task(name, &recs)
        })
        .collect()
}

fn analyze_task(name: &str, recs: &[&ModelPredRecord]) -> TaskModelQuality {
    let best_known = recs.iter().map(|r| r.measured_gflops).fold(0.0, f64::max);
    let mut rounds: Vec<RoundQuality> = Vec::new();
    let mut cum_pred: Vec<f64> = Vec::new();
    let mut cum_meas: Vec<f64> = Vec::new();
    let mut z_within = 0usize;
    let mut z_total = 0usize;
    let mut cum_regret = 0.0;
    let mut best = 0.0f64;

    let mut i = 0;
    while i < recs.len() {
        let round = recs[i].round;
        let mut j = i;
        while j < recs.len() && recs[j].round == round {
            j += 1;
        }
        let round_recs = &recs[i..j];
        i = j;

        let mut rp: Vec<f64> = Vec::new();
        let mut rm: Vec<f64> = Vec::new();
        for r in round_recs {
            best = best.max(r.measured_gflops);
            cum_regret += (best_known - r.measured_gflops.max(0.0)).max(0.0);
            if let Some(p) = r.predicted_mean {
                if r.measured_gflops > 0.0 {
                    rp.push(p);
                    rm.push(r.measured_gflops);
                    cum_pred.push(p);
                    cum_meas.push(r.measured_gflops);
                    if let Some(s) = r.predicted_std {
                        if s > 0.0 {
                            z_total += 1;
                            if ((r.measured_gflops - p) / s).abs() <= 1.0 {
                                z_within += 1;
                            }
                        }
                    }
                }
            }
        }

        let rank_corr = (rp.len() >= 3).then(|| spearman(&rp, &rm));
        let cum_rank_corr = (cum_pred.len() >= 2).then(|| spearman(&cum_pred, &cum_meas));
        let top_k_recall = (rp.len() >= 2).then(|| top_k_recall(&rp, &rm, TOP_K));
        let calibration_err = (z_total > 0).then(|| {
            #[allow(clippy::cast_precision_loss)]
            let coverage = z_within as f64 / z_total as f64;
            (coverage - GAUSSIAN_ONE_SIGMA).abs()
        });
        rounds.push(RoundQuality {
            round,
            trials: round_recs.len(),
            with_opinion: rp.len(),
            rank_corr,
            cum_rank_corr,
            top_k_recall,
            calibration_err,
            cum_regret,
            best_gflops: best,
        });
    }

    let final_rank_corr = rounds.iter().rev().find_map(|r| r.cum_rank_corr);
    let recalls: Vec<f64> = rounds.iter().filter_map(|r| r.top_k_recall).collect();
    #[allow(clippy::cast_precision_loss)]
    let mean_top_k_recall =
        (!recalls.is_empty()).then(|| recalls.iter().sum::<f64>() / recalls.len() as f64);
    let final_calibration_err = rounds.iter().rev().find_map(|r| r.calibration_err);
    let trustworthy_from = rounds
        .iter()
        .find(|r| r.cum_rank_corr.is_some_and(|c| c >= TRUST_RANK_CORR))
        .map(|r| r.round);
    TaskModelQuality {
        task: name.to_string(),
        trials: recs.len(),
        total_regret: cum_regret,
        final_rank_corr,
        mean_top_k_recall,
        final_calibration_err,
        trustworthy_from,
        rounds,
    }
}

/// Of the k best *measured* entries, the fraction the model also placed in
/// its predicted top k. `k` is capped at the number of entries.
fn top_k_recall(pred: &[f64], meas: &[f64], k: usize) -> f64 {
    let k = k.min(pred.len());
    if k == 0 {
        return 0.0;
    }
    let top_by = |vals: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        // aal-lint: allow(unwrap, reason = "metric values are finite by construction (no NaN sources upstream)")
        idx.sort_by(|&a, &b| vals[b].partial_cmp(&vals[a]).expect("finite metric"));
        idx.truncate(k);
        idx
    };
    let top_pred = top_by(pred);
    let top_meas = top_by(meas);
    let hits = top_meas.iter().filter(|i| top_pred.contains(i)).count();
    #[allow(clippy::cast_precision_loss)]
    let recall = hits as f64 / k as f64;
    recall
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "     -".to_string(), |x| format!("{x:6.3}"))
}

/// Renders the `aaltune explain` per-task tables with verdict lines.
#[must_use]
pub fn render_explain(tasks: &[TaskModelQuality]) -> String {
    let mut out = String::new();
    for t in tasks {
        let best = t.rounds.last().map_or(0.0, |r| r.best_gflops);
        out.push_str(&format!(
            "task {}  ({} trials, {} rounds, best {:.1} GFLOPS)\n",
            t.task,
            t.trials,
            t.rounds.len(),
            best
        ));
        out.push_str(
            "  round  trials  opinions  rank-corr  cum-corr  top-3  calib-err  cum-regret\n",
        );
        for r in &t.rounds {
            out.push_str(&format!(
                "  {:5}  {:6}  {:8}  {:>9}  {:>8}  {:>5}  {:>9}  {:10.1}\n",
                r.round,
                r.trials,
                r.with_opinion,
                fmt_opt(r.rank_corr).trim(),
                fmt_opt(r.cum_rank_corr).trim(),
                fmt_opt(r.top_k_recall).trim(),
                fmt_opt(r.calibration_err).trim(),
                r.cum_regret,
            ));
        }
        match (t.trustworthy_from, t.final_rank_corr) {
            (Some(n), Some(c)) => out.push_str(&format!(
                "  verdict: model trustworthy from round {n} \
                 (cumulative rank-corr ≥ {TRUST_RANK_CORR}); final rank-corr {c:.3}\n"
            )),
            (None, Some(c)) => out.push_str(&format!(
                "  verdict: model untrustworthy for the whole run \
                 (cumulative rank-corr peaked below {TRUST_RANK_CORR}); final rank-corr {c:.3}\n"
            )),
            _ => out.push_str("  verdict: model never scored — blind search only\n"),
        }
        let recall = t.mean_top_k_recall.map_or_else(|| "-".into(), |v| format!("{v:.2}"));
        let calib = t.final_calibration_err.map_or_else(|| "-".into(), |v| format!("{v:.3}"));
        out.push_str(&format!(
            "  top-{TOP_K} recall {recall} · calibration error {calib} · total regret {:.1} GFLOPS\n\n",
            t.total_regret
        ));
    }
    if tasks.is_empty() {
        out.push_str("no capture records — was the run tuned with capture on?\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        task: &str,
        round: usize,
        trial: usize,
        pred: Option<f64>,
        std: Option<f64>,
        meas: f64,
    ) -> ModelPredRecord {
        ModelPredRecord {
            task: task.to_string(),
            round,
            trial,
            config_index: trial as u64,
            predicted_mean: pred,
            predicted_std: std,
            acquisition: pred,
            measured_gflops: meas,
        }
    }

    /// A capture stream where predictions track measurements perfectly.
    fn perfect_stream() -> Vec<ModelPredRecord> {
        let mut v = Vec::new();
        // Round 0: blind init.
        for t in 0..4 {
            v.push(rec("m.T1", 0, t, None, None, 40.0 + t as f64));
        }
        // Rounds 1..3: opinions that exactly match outcomes.
        let mut t = 4;
        for round in 1..4 {
            for i in 0..4 {
                let g = 50.0 + (round * 4 + i) as f64;
                v.push(rec("m.T1", round, t, Some(g), Some(5.0), g));
                t += 1;
            }
        }
        v
    }

    #[test]
    fn perfect_predictions_score_perfectly() {
        let tasks = analyze(&perfect_stream());
        assert_eq!(tasks.len(), 1);
        let t = &tasks[0];
        assert_eq!(t.task, "m.T1");
        assert_eq!(t.trials, 16);
        assert_eq!(t.rounds.len(), 4);
        // Blind round: no correlations.
        assert_eq!(t.rounds[0].with_opinion, 0);
        assert_eq!(t.rounds[0].rank_corr, None);
        // Opinionated rounds: perfect ordering.
        for r in &t.rounds[1..] {
            assert!((r.rank_corr.unwrap() - 1.0).abs() < 1e-12);
            assert!((r.top_k_recall.unwrap() - 1.0).abs() < 1e-12);
        }
        assert!((t.final_rank_corr.unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(t.trustworthy_from, Some(1));
        // Exact predictions are all within one std → coverage 1.0.
        assert!((t.final_calibration_err.unwrap() - (1.0 - GAUSSIAN_ONE_SIGMA)).abs() < 1e-12);
        // Regret is positive (early trials below the final best) and the
        // best is the stream maximum.
        assert!(t.total_regret > 0.0);
        assert!((t.rounds.last().unwrap().best_gflops - 65.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_predictions_score_negative() {
        let mut v = Vec::new();
        for i in 0..8 {
            let g = 50.0 + i as f64;
            // Model ranks them exactly backwards.
            v.push(rec("m.T1", 0, i, Some(100.0 - g), None, g));
        }
        let t = &analyze(&v)[0];
        assert!((t.final_rank_corr.unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(t.trustworthy_from, None);
        assert_eq!(t.final_calibration_err, None, "no stds → no calibration");
    }

    #[test]
    fn failed_trials_count_for_regret_but_not_correlation() {
        let mut v = perfect_stream();
        // A crashed launch with a (wrong) opinion attached.
        v.push(rec("m.T1", 4, 16, Some(60.0), Some(5.0), 0.0));
        let t = &analyze(&v)[0];
        assert_eq!(t.rounds.last().unwrap().with_opinion, 0, "failure excluded");
        assert!((t.final_rank_corr.unwrap() - 1.0).abs() < 1e-12, "correlation untouched");
        // The failure pays full regret: best_known − 0.
        let base = analyze(&perfect_stream())[0].total_regret;
        assert!((t.total_regret - base - 65.0).abs() < 1e-9);
    }

    #[test]
    fn tasks_group_in_first_appearance_order() {
        let mut v = perfect_stream();
        let mut second: Vec<ModelPredRecord> = perfect_stream()
            .into_iter()
            .map(|mut r| {
                r.task = "m.T2".to_string();
                r
            })
            .collect();
        v.append(&mut second);
        let tasks = analyze(&v);
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].task, "m.T1");
        assert_eq!(tasks[1].task, "m.T2");
        assert_eq!(tasks[0].rounds, tasks[1].rounds);
    }

    #[test]
    fn render_explain_mentions_rounds_and_verdict() {
        let text = render_explain(&analyze(&perfect_stream()));
        assert!(text.contains("task m.T1"));
        assert!(text.contains("rank-corr"));
        assert!(text.contains("cum-regret"));
        assert!(text.contains("trustworthy from round 1"), "{text}");
        let empty = render_explain(&[]);
        assert!(empty.contains("no capture records"));
    }

    #[test]
    fn top_k_recall_counts_overlap() {
        // Measured top-3 is {7,6,5} at indices {3,2,1}; predictions agree
        // on 2 of 3.
        let meas = [4.0, 5.0, 6.0, 7.0];
        let pred = [6.5, 5.5, 1.0, 7.5]; // top-3 pred = indices {3,0,1}
        assert!((top_k_recall(&pred, &meas, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((top_k_recall(&pred, &meas, 10) - 1.0).abs() < 1e-12, "k caps at n");
    }
}

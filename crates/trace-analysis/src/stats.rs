//! Bootstrap statistics for cross-run comparison.
//!
//! Tuning outcomes are noisy: two runs of the *same* configuration with
//! different seeds land on different GFLOPS, so a raw mean delta between two
//! runs says nothing by itself. The tool of choice (standard in the
//! AutoTVM/Tenset tuning-benchmark line) is the bootstrap: resample the
//! recorded trial outcomes with replacement, recompute the delta each time,
//! and read a confidence interval off the resampled distribution. A delta
//! whose interval straddles zero is seed noise, not a regression.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A bootstrap percentile confidence interval for a mean delta
/// (`candidate − base`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// Point estimate: mean of candidate minus mean of base.
    pub delta: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level of `[lo, hi]` (e.g. 0.95).
    pub confidence: f64,
    /// Resamples drawn.
    pub resamples: usize,
    /// Whether the paired estimator was used (equal-length inputs).
    pub paired: bool,
}

impl BootstrapCi {
    /// True when the interval excludes zero — the delta is distinguishable
    /// from resampling noise at this confidence level.
    #[must_use]
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0.0 || self.hi < 0.0
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let n = xs.len() as f64;
    xs.iter().sum::<f64>() / n
}

/// Population variance; 0.0 for fewer than two samples.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    #[allow(clippy::cast_precision_loss)]
    let n = xs.len() as f64;
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n
}

/// Bootstrap CI for the difference in means between `base` and `cand`.
///
/// Equal-length inputs use the **paired** estimator: trial *i* of one run is
/// matched with trial *i* of the other (fixed seeds walk the two runs
/// through the same measurement schedule, so pairing cancels the shared
/// per-position variance) and index tuples are resampled jointly from the
/// per-pair differences. Unequal lengths fall back to the two-sample
/// estimator, resampling each side independently.
///
/// `alpha` is the significance level (0.05 → a 95% interval); it is clamped
/// to `(0, 1)`. The RNG is seeded from `seed`, so a comparison is exactly
/// reproducible. Empty inputs yield a degenerate all-zero interval.
#[must_use]
pub fn bootstrap_mean_delta_ci(
    base: &[f64],
    cand: &[f64],
    resamples: usize,
    alpha: f64,
    seed: u64,
) -> BootstrapCi {
    let alpha = alpha.clamp(1e-6, 1.0 - 1e-6);
    let confidence = 1.0 - alpha;
    let paired = !base.is_empty() && base.len() == cand.len();
    let delta = mean(cand) - mean(base);
    if base.is_empty() || cand.is_empty() || resamples == 0 {
        return BootstrapCi { delta, lo: delta, hi: delta, confidence, resamples: 0, paired };
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples);
    if paired {
        let diffs: Vec<f64> = base.iter().zip(cand).map(|(b, c)| c - b).collect();
        for _ in 0..resamples {
            let mut sum = 0.0;
            for _ in 0..diffs.len() {
                sum += diffs[rng.gen_range(0..diffs.len())];
            }
            #[allow(clippy::cast_precision_loss)]
            let n = diffs.len() as f64;
            means.push(sum / n);
        }
    } else {
        for _ in 0..resamples {
            let mut bsum = 0.0;
            for _ in 0..base.len() {
                bsum += base[rng.gen_range(0..base.len())];
            }
            let mut csum = 0.0;
            for _ in 0..cand.len() {
                csum += cand[rng.gen_range(0..cand.len())];
            }
            #[allow(clippy::cast_precision_loss)]
            let (bn, cn) = (base.len() as f64, cand.len() as f64);
            means.push(csum / cn - bsum / bn);
        }
    }
    means.sort_by(f64::total_cmp);
    let lo = percentile(&means, alpha / 2.0);
    let hi = percentile(&means, 1.0 - alpha / 2.0);
    BootstrapCi { delta, lo, hi, confidence, resamples, paired }
}

/// Value at quantile `q` of an ascending-sorted slice (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ci_centers_on_the_empirical_delta() {
        let base = seq(50, |i| 100.0 + (i % 7) as f64);
        let cand = seq(50, |i| 110.0 + (i % 7) as f64);
        let ci = bootstrap_mean_delta_ci(&base, &cand, 2000, 0.05, 7);
        assert!(ci.paired);
        assert!((ci.delta - 10.0).abs() < 1e-9);
        assert!(ci.lo <= ci.delta && ci.delta <= ci.hi);
        assert!(ci.excludes_zero());
    }

    #[test]
    fn identical_runs_do_not_exclude_zero() {
        let xs = seq(40, |i| 50.0 + ((i * 13) % 11) as f64);
        let ci = bootstrap_mean_delta_ci(&xs, &xs, 1000, 0.05, 3);
        assert_eq!(ci.delta, 0.0);
        assert!(!ci.excludes_zero());
    }

    #[test]
    fn unequal_lengths_use_two_sample_estimator() {
        let base = seq(30, |i| 10.0 + (i % 5) as f64);
        let cand = seq(45, |i| 30.0 + (i % 5) as f64);
        let ci = bootstrap_mean_delta_ci(&base, &cand, 1500, 0.05, 11);
        assert!(!ci.paired);
        assert!(ci.lo > 0.0, "a 20-GFLOPS gap must dominate resampling noise: {ci:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let base = seq(20, |i| i as f64);
        let cand = seq(20, |i| i as f64 * 1.1);
        let a = bootstrap_mean_delta_ci(&base, &cand, 500, 0.05, 42);
        let b = bootstrap_mean_delta_ci(&base, &cand, 500, 0.05, 42);
        assert_eq!(a, b);
        let c = bootstrap_mean_delta_ci(&base, &cand, 500, 0.05, 43);
        assert!(a.lo != c.lo || a.hi != c.hi, "different seeds should differ");
    }

    #[test]
    fn empty_inputs_are_degenerate() {
        let ci = bootstrap_mean_delta_ci(&[], &[1.0], 100, 0.05, 0);
        assert_eq!(ci.resamples, 0);
        assert_eq!(ci.delta, ci.lo);
        assert_eq!(ci.delta, ci.hi);
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let base = seq(25, |i| ((i * 7) % 13) as f64);
        let cand = seq(25, |i| 2.0 + ((i * 5) % 13) as f64);
        let narrow = bootstrap_mean_delta_ci(&base, &cand, 2000, 0.2, 5);
        let wide = bootstrap_mean_delta_ci(&base, &cand, 2000, 0.01, 5);
        assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo);
    }
}

//! Property-based invariants for the bootstrap comparison statistics.
//!
//! The regression gate is only trustworthy if its confidence intervals
//! behave: they must bracket the empirical mean delta, be ordered, and not
//! depend on anything but the inputs and the seed.

use proptest::prelude::*;
use trace_analysis::{bootstrap_mean_delta_ci, mean};

/// Non-empty synthetic measurement vectors around a configurable level.
fn arb_samples(level: f64) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(level * 0.5..level * 1.5, 3..40)
}

proptest! {
    /// The percentile interval must contain the point estimate — the mean
    /// delta between the actual samples — for any synthetic data: the
    /// bootstrap distribution centers on the empirical statistic, so its
    /// central 95% always brackets it.
    #[test]
    fn ci_contains_the_empirical_mean_delta(
        base in arb_samples(100.0),
        cand in arb_samples(120.0),
        seed in 0u64..1000,
    ) {
        let true_delta = mean(&cand) - mean(&base);
        let ci = bootstrap_mean_delta_ci(&base, &cand, 500, 0.05, seed);
        prop_assert!((ci.delta - true_delta).abs() < 1e-9);
        prop_assert!(ci.lo <= ci.hi, "interval must be ordered: {ci:?}");
        prop_assert!(
            ci.lo <= true_delta + 1e-9 && true_delta <= ci.hi + 1e-9,
            "CI [{}, {}] must bracket the empirical delta {true_delta}",
            ci.lo,
            ci.hi
        );
    }

    /// A constant shift applied to every candidate sample moves the whole
    /// interval by that shift (bootstrap resampling is translation
    /// equivariant given the same seed).
    #[test]
    fn ci_is_translation_equivariant(
        base in arb_samples(50.0),
        shift in -25.0f64..25.0,
        seed in 0u64..1000,
    ) {
        let cand: Vec<f64> = base.iter().map(|x| x + shift).collect();
        let zero = bootstrap_mean_delta_ci(&base, &base, 400, 0.05, seed);
        let moved = bootstrap_mean_delta_ci(&base, &cand, 400, 0.05, seed);
        prop_assert!((moved.delta - (zero.delta + shift)).abs() < 1e-9);
        prop_assert!((moved.lo - (zero.lo + shift)).abs() < 1e-6);
        prop_assert!((moved.hi - (zero.hi + shift)).abs() < 1e-6);
    }

    /// Tightening the significance level can only widen the interval.
    #[test]
    fn stricter_alpha_never_narrows_the_interval(
        base in arb_samples(10.0),
        cand in arb_samples(12.0),
        seed in 0u64..1000,
    ) {
        let loose = bootstrap_mean_delta_ci(&base, &cand, 600, 0.2, seed);
        let strict = bootstrap_mean_delta_ci(&base, &cand, 600, 0.01, seed);
        prop_assert!(strict.hi - strict.lo >= loose.hi - loose.lo - 1e-12);
    }
}

//! Golden-file tests: `compare` pinned against the committed miniature run
//! directories under `tests/fixtures/` (regenerate with
//! `cargo run -p trace-analysis --example gen_fixtures`).
//!
//! The CLI-level twin of these assertions (exit code 2 under
//! `--fail-on-regress`) lives in `crates/cli/src/commands.rs`.

use std::path::PathBuf;
use trace_analysis::{compare_run_dirs, CompareOptions, LoadedRun, Verdict};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn opts() -> CompareOptions {
    CompareOptions { resamples: 1000, ..CompareOptions::default() }
}

#[test]
fn reordered_measurements_classify_as_noise() {
    let cmp = compare_run_dirs(&fixture("base"), &fixture("noise"), opts()).unwrap();
    assert_eq!(cmp.tasks.len(), 2);
    for t in &cmp.tasks {
        assert_eq!(t.verdict, Verdict::Noise, "task {} misclassified: {t:?}", t.task);
    }
    assert!(!cmp.has_regressions());
    assert_eq!(cmp.aggregate.delta, 0.0, "same multisets ⇒ identical bests");
}

#[test]
fn injected_slowdown_classifies_as_regression() {
    let cmp = compare_run_dirs(&fixture("base"), &fixture("regressed"), opts()).unwrap();
    assert!(cmp.has_regressions(), "the gate must fire on the injected 20% slowdown");
    let t1 = cmp.tasks.iter().find(|t| t.task == "m.T1").unwrap();
    assert_eq!(t1.verdict, Verdict::Regressed);
    assert!(t1.delta_pct < -15.0, "expected ≈ −20%, got {}", t1.delta_pct);
    assert!(t1.ci.hi < 0.0, "CI must sit entirely below zero: {:?}", t1.ci);
    let t2 = cmp.tasks.iter().find(|t| t.task == "m.T2").unwrap();
    assert_eq!(t2.verdict, Verdict::Noise, "the untouched task must stay noise");
    let text = cmp.render();
    assert!(text.contains("1 regressed"), "{text}");
}

#[test]
fn comparison_is_deterministic() {
    let a = compare_run_dirs(&fixture("base"), &fixture("regressed"), opts()).unwrap();
    let b = compare_run_dirs(&fixture("base"), &fixture("regressed"), opts()).unwrap();
    assert_eq!(a.render(), b.render());
}

#[test]
fn report_renders_fixture_run_with_baseline() {
    let run = LoadedRun::load(&fixture("regressed")).unwrap();
    let base = LoadedRun::load(&fixture("base")).unwrap();
    let cmp = trace_analysis::compare_logs(
        base.id.clone(),
        run.id.clone(),
        &base.logs,
        &run.logs,
        opts(),
        Vec::new(),
    );
    let html = trace_analysis::render_report(&run, Some(&base), Some(&cmp));
    assert!(html.contains("▼ regressed"));
    assert!(html.contains("m.T1") && html.contains("m.T2"));
    for banned in ["http://", "https://", "<link", "<script"] {
        assert!(!html.contains(banned), "report must be self-contained; found {banned}");
    }
}

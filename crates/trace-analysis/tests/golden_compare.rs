//! Golden-file tests: `compare` pinned against the committed miniature run
//! directories under `tests/fixtures/` (regenerate with
//! `cargo run -p trace-analysis --example gen_fixtures`).
//!
//! The CLI-level twin of these assertions (exit code 2 under
//! `--fail-on-regress`) lives in `crates/cli/src/commands.rs`.

use std::path::PathBuf;
use trace_analysis::{compare_run_dirs, CompareOptions, LoadedRun, Verdict};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn opts() -> CompareOptions {
    CompareOptions { resamples: 1000, ..CompareOptions::default() }
}

#[test]
fn reordered_measurements_classify_as_noise() {
    let cmp = compare_run_dirs(&fixture("base"), &fixture("noise"), opts()).unwrap();
    assert_eq!(cmp.tasks.len(), 2);
    for t in &cmp.tasks {
        assert_eq!(t.verdict, Verdict::Noise, "task {} misclassified: {t:?}", t.task);
    }
    assert!(!cmp.has_regressions());
    assert_eq!(cmp.aggregate.delta, 0.0, "same multisets ⇒ identical bests");
}

#[test]
fn injected_slowdown_classifies_as_regression() {
    let cmp = compare_run_dirs(&fixture("base"), &fixture("regressed"), opts()).unwrap();
    assert!(cmp.has_regressions(), "the gate must fire on the injected 20% slowdown");
    let t1 = cmp.tasks.iter().find(|t| t.task == "m.T1").unwrap();
    assert_eq!(t1.verdict, Verdict::Regressed);
    assert!(t1.delta_pct < -15.0, "expected ≈ −20%, got {}", t1.delta_pct);
    assert!(t1.ci.hi < 0.0, "CI must sit entirely below zero: {:?}", t1.ci);
    let t2 = cmp.tasks.iter().find(|t| t.task == "m.T2").unwrap();
    assert_eq!(t2.verdict, Verdict::Noise, "the untouched task must stay noise");
    let text = cmp.render();
    assert!(text.contains("1 regressed"), "{text}");
}

#[test]
fn inverted_model_capture_gates_without_any_perf_delta() {
    let cmp = compare_run_dirs(&fixture("base"), &fixture("model_regressed"), opts()).unwrap();
    for t in &cmp.tasks {
        assert_eq!(t.verdict, Verdict::Noise, "identical logs must stay noise: {t:?}");
    }
    assert_eq!(cmp.model_quality.len(), 2, "{:?}", cmp.model_quality);
    assert!(
        cmp.model_quality.iter().all(|m| m.regressed),
        "the inverted capture must regress every task: {:?}",
        cmp.model_quality
    );
    assert!(cmp.has_regressions(), "the rank-correlation gate alone must fire");
    // A captured baseline against an uncaptured candidate never gates on
    // model quality (`noise` has no capture file).
    let blind = compare_run_dirs(&fixture("base"), &fixture("noise"), opts()).unwrap();
    assert!(blind.model_quality.is_empty());
    assert!(!blind.has_regressions());
}

#[test]
fn report_shows_model_quality_panel_for_captured_fixture() {
    let run = LoadedRun::load(&fixture("base")).unwrap();
    assert!(!run.model_quality.is_empty());
    let html = trace_analysis::render_report(&run, None, None);
    assert!(html.contains("Model quality"), "captured fixture must get the panel");
    assert!(html.contains("trustworthy"), "perfect predictions must read as trustworthy");
}

#[test]
fn comparison_is_deterministic() {
    let a = compare_run_dirs(&fixture("base"), &fixture("regressed"), opts()).unwrap();
    let b = compare_run_dirs(&fixture("base"), &fixture("regressed"), opts()).unwrap();
    assert_eq!(a.render(), b.render());
}

#[test]
fn report_renders_fixture_run_with_baseline() {
    let run = LoadedRun::load(&fixture("regressed")).unwrap();
    let base = LoadedRun::load(&fixture("base")).unwrap();
    let cmp = trace_analysis::compare_logs(
        base.id.clone(),
        run.id.clone(),
        &base.logs,
        &run.logs,
        opts(),
        Vec::new(),
    );
    let html = trace_analysis::render_report(&run, Some(&base), Some(&cmp));
    assert!(html.contains("▼ regressed"));
    assert!(html.contains("m.T1") && html.contains("m.T2"));
    for banned in ["http://", "https://", "<link", "<script"] {
        assert!(!html.contains(banned), "report must be self-contained; found {banned}");
    }
}

//! Regenerates the committed miniature run directories under
//! `tests/fixtures/` that the golden `compare` tests pin against:
//!
//! ```text
//! cargo run -p trace-analysis --example gen_fixtures
//! ```
//!
//! Three runs over the same two tasks, fully deterministic:
//! - `base`      — the reference run.
//! - `noise`     — the same per-task measurement multisets, reordered:
//!   identical means, so every task must classify as noise.
//! - `regressed` — `m.T1` slowed down by 20%, `m.T2` untouched: `m.T1`
//!   must classify as regressed (and gate the exit code), `m.T2` as noise.

use active_learning::{
    RunDir, RunManifest, TrialRecord, TuneOptions, TuningLog, MANIFEST_SCHEMA_VERSION,
};
use std::path::Path;

const N: usize = 24;

fn base_gflops(task: usize, i: usize) -> f64 {
    let level = if task == 0 { 100.0 } else { 50.0 };
    level + ((i * 13 + task * 5) % 7) as f64
}

fn log_from(task: usize, name: &str, f: impl Fn(usize) -> f64) -> TuningLog {
    let mut log = TuningLog::new(name, "bted+bao");
    let mut best: f64 = 0.0;
    for i in 0..N {
        let g = f(i);
        best = best.max(g);
        log.records.push(TrialRecord {
            trial: i,
            config_index: (task * 1000 + i * 17) as u64,
            gflops: g,
            latency_s: 1e-4,
            best_gflops: best,
        });
    }
    log
}

fn write_run(root: &Path, name: &str, logs: &[TuningLog]) {
    let dir = RunDir::create(root.join(name)).expect("create fixture dir");
    dir.write_manifest(&RunManifest {
        model: "mobilenet_v1".into(),
        method: "bted+bao".into(),
        tasks: logs.iter().map(|l| l.task_name.clone()).collect(),
        seed: 0,
        options: TuneOptions { n_trial: N, ..TuneOptions::smoke() },
        schema_version: Some(MANIFEST_SCHEMA_VERSION),
        git_describe: None,
        wall_time_s: Some(0.5),
        device: None,
        fault: None,
        resumed: None,
        workers: None,
        devices: None,
    })
    .expect("write manifest");
    for log in logs {
        dir.write_log(log).expect("write log");
    }
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    write_run(
        &root,
        "base",
        &[log_from(0, "m.T1", |i| base_gflops(0, i)), log_from(1, "m.T2", |i| base_gflops(1, i))],
    );
    write_run(
        &root,
        "noise",
        &[
            log_from(0, "m.T1", |i| base_gflops(0, (i + 7) % N)),
            log_from(1, "m.T2", |i| base_gflops(1, (i + 11) % N)),
        ],
    );
    write_run(
        &root,
        "regressed",
        &[
            log_from(0, "m.T1", |i| 0.8 * base_gflops(0, i)),
            log_from(1, "m.T2", |i| base_gflops(1, i)),
        ],
    );
    println!("wrote fixtures under {}", root.display());
}

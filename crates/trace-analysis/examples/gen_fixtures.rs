//! Regenerates the committed miniature run directories under
//! `tests/fixtures/` that the golden `compare` tests pin against:
//!
//! ```text
//! cargo run -p trace-analysis --example gen_fixtures
//! ```
//!
//! Four runs over the same two tasks, fully deterministic:
//! - `base`      — the reference run, with a well-calibrated model capture
//!   (`model_quality.jsonl`: predictions track the measurements).
//! - `noise`     — the same per-task measurement multisets, reordered:
//!   identical means, so every task must classify as noise.
//! - `regressed` — `m.T1` slowed down by 20%, `m.T2` untouched: `m.T1`
//!   must classify as regressed (and gate the exit code), `m.T2` as noise.
//! - `model_regressed` — byte-identical logs to `base` (no perf delta at
//!   all) but an *inverted* model capture: only the rank-correlation gate
//!   of `compare --fail-on-regress` can flag this run.

use active_learning::{
    write_model_quality, ModelPredRecord, RunDir, RunManifest, TrialRecord, TuneOptions, TuningLog,
    MANIFEST_SCHEMA_VERSION, MODEL_QUALITY_FILE,
};
use std::path::Path;

const N: usize = 24;

fn base_gflops(task: usize, i: usize) -> f64 {
    let level = if task == 0 { 100.0 } else { 50.0 };
    level + ((i * 13 + task * 5) % 7) as f64
}

fn log_from(task: usize, name: &str, f: impl Fn(usize) -> f64) -> TuningLog {
    let mut log = TuningLog::new(name, "bted+bao");
    let mut best: f64 = 0.0;
    for i in 0..N {
        let g = f(i);
        best = best.max(g);
        log.records.push(TrialRecord {
            trial: i,
            config_index: (task * 1000 + i * 17) as u64,
            gflops: g,
            latency_s: 1e-4,
            best_gflops: best,
        });
    }
    log
}

/// Model capture for `logs`: 3 rounds of 8 proposals per task, with the
/// predicted mean derived from the measurement through `predict` (identity
/// for a trustworthy model, an inversion for a broken one).
fn capture_from(logs: &[TuningLog], predict: impl Fn(f64) -> f64) -> Vec<ModelPredRecord> {
    let mut records = Vec::new();
    for log in logs {
        for rec in &log.records {
            let mean = predict(rec.gflops);
            records.push(ModelPredRecord {
                task: log.task_name.clone(),
                round: rec.trial / 8,
                trial: rec.trial,
                config_index: rec.config_index,
                predicted_mean: Some(mean),
                predicted_std: Some(0.05 * mean.abs().max(1.0)),
                acquisition: Some(mean),
                measured_gflops: rec.gflops,
            });
        }
    }
    records
}

fn write_run(root: &Path, name: &str, logs: &[TuningLog]) {
    let dir = RunDir::create(root.join(name)).expect("create fixture dir");
    dir.write_manifest(&RunManifest {
        model: "mobilenet_v1".into(),
        method: "bted+bao".into(),
        tasks: logs.iter().map(|l| l.task_name.clone()).collect(),
        seed: 0,
        options: TuneOptions { n_trial: N, ..TuneOptions::smoke() },
        schema_version: Some(MANIFEST_SCHEMA_VERSION),
        git_describe: None,
        wall_time_s: Some(0.5),
        device: None,
        fault: None,
        resumed: None,
        workers: None,
        devices: None,
        db: None,
    })
    .expect("write manifest");
    for log in logs {
        dir.write_log(log).expect("write log");
    }
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let base_logs =
        [log_from(0, "m.T1", |i| base_gflops(0, i)), log_from(1, "m.T2", |i| base_gflops(1, i))];
    write_run(&root, "base", &base_logs);
    write_model_quality(
        &root.join("base").join(MODEL_QUALITY_FILE),
        &capture_from(&base_logs, |g| g),
    )
    .expect("write base capture");
    // Same measurements as base, but the model ranked them upside down.
    write_run(&root, "model_regressed", &base_logs);
    write_model_quality(
        &root.join("model_regressed").join(MODEL_QUALITY_FILE),
        &capture_from(&base_logs, |g| 200.0 - g),
    )
    .expect("write inverted capture");
    write_run(
        &root,
        "noise",
        &[
            log_from(0, "m.T1", |i| base_gflops(0, (i + 7) % N)),
            log_from(1, "m.T2", |i| base_gflops(1, (i + 11) % N)),
        ],
    );
    write_run(
        &root,
        "regressed",
        &[
            log_from(0, "m.T1", |i| 0.8 * base_gflops(0, i)),
            log_from(1, "m.T2", |i| base_gflops(1, i)),
        ],
    );
    println!("wrote fixtures under {}", root.display());
}

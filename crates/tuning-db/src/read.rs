//! A cloneable, lock-free-to-the-caller read view of an open database.
//!
//! The serve read path (`GET /best`) answers thousands of lookups per
//! second while tuning jobs keep upserting. [`ReadHandle`] shares the
//! writer's in-memory map behind an `RwLock`: readers take the shared
//! side (many concurrently), the writer takes the exclusive side only
//! for the map insert itself — never across disk I/O, which `upsert`
//! finishes first under the write-ahead contract. Every accessor clones
//! the record out, so no lock is held while the caller serializes or
//! inspects it, and a record can never be observed half-merged.

use crate::db::nearest_in;
use crate::spec::{DbRecord, TaskSpec};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use telemetry::sync::read_or_recover;

/// Shared read-only view over a [`crate::TuningDb`]'s records.
///
/// Obtained from [`crate::TuningDb::read_handle`]; clones are cheap
/// (one `Arc` bump) and safe to hand to any number of threads. The
/// handle stays valid after the writer is dropped — it then serves the
/// last committed state.
#[derive(Debug, Clone)]
pub struct ReadHandle {
    records: Arc<RwLock<BTreeMap<String, DbRecord>>>,
}

impl ReadHandle {
    pub(crate) fn new(records: Arc<RwLock<BTreeMap<String, DbRecord>>>) -> Self {
        ReadHandle { records }
    }

    /// Number of distinct task specs visible right now.
    #[must_use]
    pub fn len(&self) -> usize {
        read_or_recover(&self.records).len()
    }

    /// True when no task is stored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        read_or_recover(&self.records).is_empty()
    }

    /// Fetches the record stored under `key` (see [`TaskSpec::key`]).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<DbRecord> {
        read_or_recover(&self.records).get(key).cloned()
    }

    /// Exact-hit lookup, bumping `db.hit` / `db.miss` like the writer's
    /// [`crate::TuningDb::lookup`].
    #[must_use]
    pub fn lookup(&self, spec: &TaskSpec) -> Option<DbRecord> {
        let got = self.get(&spec.key());
        let tel = telemetry::global();
        tel.count(if got.is_some() { crate::DB_HIT_COUNTER } else { crate::DB_MISS_COUNTER }, 1);
        got
    }

    /// Nearest transfer candidates; same semantics as
    /// [`crate::TuningDb::nearest`].
    #[must_use]
    pub fn nearest(&self, spec: &TaskSpec, feature: &[f64], k: usize) -> Vec<DbRecord> {
        nearest_in(&read_or_recover(&self.records), spec, feature, k)
    }
}

#[cfg(test)]
mod tests {
    use crate::db::{TuningDb, DB_SCHEMA_VERSION};
    use crate::lock::LockOptions;
    use crate::spec::{DbRecord, TaskSpec, TopConfig};
    use dnn_graph::task::{TaskKind, TuningTask, Workload};
    use schedule::{ConfigSpace, Knob};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aaltune-read-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn conv_task(out_channels: usize) -> TuningTask {
        TuningTask {
            kind: TaskKind::Conv2d,
            name: format!("m.f{out_channels}"),
            workload: Workload::Conv2d {
                batch: 1,
                in_channels: 16,
                out_channels,
                height: 28,
                width: 28,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                groups: 1,
            },
            occurrences: 1,
        }
    }

    fn space() -> ConfigSpace {
        ConfigSpace::new("s", vec![Knob::split("a", 64, 2), Knob::choice("u", vec![0, 512])])
    }

    /// A record whose internal fields are all derived from `gflops`, so a
    /// reader can verify it observed one coherent version: `best_gflops`,
    /// the top-config gflops, and the curve tail must all agree.
    fn coherent_record(out_channels: usize, gflops: f64) -> DbRecord {
        let task = conv_task(out_channels);
        let s = space();
        DbRecord {
            schema_version: DB_SCHEMA_VERSION,
            spec: TaskSpec::of(&task, &s, "sim"),
            feature: TaskSpec::features(&task),
            method: "bted+bao".into(),
            seed: 0,
            n_trials: 8,
            best_gflops: gflops,
            top_k: vec![TopConfig {
                config_index: 3,
                choices: s.config(3).unwrap().choices,
                gflops,
                latency_s: 1e-3,
            }],
            curve: vec![gflops / 2.0, gflops],
        }
    }

    /// Satellite: two threads reading through handles while a third
    /// upserts monotonically-improving records must never observe a torn
    /// record (fields from two different versions) nor a best that moves
    /// backwards.
    #[test]
    fn concurrent_readers_never_observe_a_torn_record() {
        let root = tmp("torn-read");
        let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
        db.upsert(coherent_record(32, 1.0)).unwrap();
        let spec = TaskSpec::of(&conv_task(32), &space(), "sim");
        let feature = TaskSpec::features(&conv_task(32));
        let handle = db.read_handle();
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (h, spec, feature, stop) =
                    (handle.clone(), spec.clone(), feature.clone(), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut last_best = 0.0_f64;
                    let mut observed = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let rec = h.lookup(&spec).expect("record exists from the start");
                        // Internal coherence: every field derives from the
                        // same upsert generation.
                        assert_eq!(rec.best_gflops, rec.top_k[0].gflops, "torn record");
                        assert_eq!(rec.best_gflops, *rec.curve.last().unwrap(), "torn curve");
                        assert_eq!(rec.best_gflops, 2.0 * rec.curve[0], "torn curve head");
                        // Monotonicity: merge keeps the best, so a reader
                        // can never see the best move backwards.
                        assert!(rec.best_gflops >= last_best, "best regressed");
                        last_best = rec.best_gflops;
                        // The nearest scan shares the map; exercise it too.
                        let _ = h.nearest(&spec, &feature, 2);
                        observed += 1;
                    }
                    observed
                })
            })
            .collect();

        for i in 1..200u32 {
            db.upsert(coherent_record(32, f64::from(i + 1))).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader panicked") > 0, "readers made progress");
        }
        // The handle serves the final committed state even after the
        // writer goes away.
        drop(db);
        assert_eq!(handle.lookup(&spec).unwrap().best_gflops, 200.0);
    }
}

//! A crash-safe, append-oriented tuning database.
//!
//! Every `tune` run used to start from scratch; this crate is the on-disk
//! memory that survives the process. It stores, per canonical task spec
//! (operator kind, workload shapes, knob-space fingerprint, device id),
//! the top-k measured configurations and the convergence curve of the best
//! run, so a later run can either serve the cached best instantly (exact
//! hit) or warm-start its initial measurement set from nearest-neighbor
//! tasks (miss).
//!
//! Robustness is the design center, not a feature:
//!
//! * **Torn writes** — every record is one CRC32-checksummed JSONL line
//!   in an append-only segment; a line whose checksum fails (a kill -9
//!   mid-append) is dropped if it is the tail, skipped-and-counted if it
//!   is mid-file. A record is *committed* only once its line is fully on
//!   disk, and the write-ahead contract is append-then-apply: the
//!   in-memory map never holds a record the segment does not.
//! * **Concurrent writers** — an advisory lock file (`lock`) serializes
//!   writers; a locker that died (kill -9) is detected by liveness probe
//!   and its lock taken over, while a live locker makes contenders back
//!   off with bounded retries and a clean error.
//! * **Bit-rot / compaction** — the compacted index (`index.json`) is
//!   swapped atomically (write-temp, fsync, rename) and is purely an
//!   optimization: [`fsck`](TuningDb::fsck) rebuilds it from surviving
//!   segments, quarantining corrupt lines into `quarantine.jsonl` under
//!   `--repair`, mirroring trace-analysis's skip-and-count corrupt-line
//!   policy.
//!
//! On-disk layout:
//!
//! ```text
//! <root>/
//!   lock                 advisory writer lock (pid inside)
//!   index.json           atomically-swapped compacted snapshot
//!   segments/seg-N.jsonl CRC-checksummed append-only record segments
//!   quarantine.jsonl     corrupt lines preserved by `fsck --repair`
//! ```

pub mod db;
pub mod lock;
pub mod read;
pub mod segment;
pub mod spec;

pub use db::{DbError, DbStats, FsckReport, TuningDb, DB_SCHEMA_VERSION, TOP_K};
pub use lock::{DbLock, LockError, LockOptions};
pub use read::ReadHandle;
pub use segment::{decode_line, encode_line, read_segment_bytes, SegmentScan};
pub use spec::{decimate_curve, DbRecord, TaskSpec, TopConfig};

/// Counter bumped on every exact-hit lookup.
pub const DB_HIT_COUNTER: &str = "db.hit";
/// Counter bumped on every lookup that found no exact record.
pub const DB_MISS_COUNTER: &str = "db.miss";
/// Counter bumped once per task whose initial set was warm-started.
pub const DB_WARM_START_COUNTER: &str = "db.warm_start";
/// Counter bumped per corrupt (checksum-failed or unparsable) line seen.
pub const DB_CORRUPT_COUNTER: &str = "db.corrupt";
/// Counter bumped when a dead writer's lock was taken over.
pub const DB_TAKEOVER_COUNTER: &str = "db.lock_takeover";
/// Counter bumped per record upsert.
pub const DB_UPSERT_COUNTER: &str = "db.upsert";
/// Gauge: distinct task specs in the open database.
pub const DB_TASKS_GAUGE: &str = "db.tasks";

//! Advisory writer lock with stale-lock takeover.
//!
//! A lock is a file named `lock` in the database root, created with
//! `O_CREAT|O_EXCL` (atomic on every POSIX filesystem) and holding the
//! owner's pid. Contenders back off with bounded retries; a holder that no
//! longer exists as a process (kill -9 left the file behind) is detected
//! and its lock removed, so a crashed writer never wedges the store.
//!
//! The remove-then-recreate takeover window is race-safe: removing a stale
//! lock only *allows* the next `create_new` attempt, which remains the
//! single atomic point of acquisition — two takers both removing the stale
//! file still serialize on the create.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// What a lock file holds.
#[derive(Debug, Serialize, Deserialize)]
struct LockBody {
    pid: u32,
}

/// How long and how eagerly to contend for the lock.
#[derive(Debug, Clone, Copy)]
pub struct LockOptions {
    /// Give up after this long without acquiring.
    pub timeout: Duration,
    /// First backoff sleep; doubles per attempt up to [`Self::max_backoff`].
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for LockOptions {
    fn default() -> Self {
        LockOptions {
            timeout: Duration::from_secs(10),
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(250),
        }
    }
}

impl LockOptions {
    /// A single-attempt profile: fail immediately when contended.
    #[must_use]
    pub fn try_once() -> Self {
        LockOptions { timeout: Duration::ZERO, ..LockOptions::default() }
    }
}

/// Why the lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// A live process holds the lock and the timeout elapsed.
    Held {
        /// Pid read from the lock file (0 if unreadable).
        pid: u32,
        /// The lock file path, for the error message.
        path: PathBuf,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Held { pid, path } => write!(
                f,
                "database is locked by live process {pid} ({}); retry later or remove the \
                 lock file if that process is not an aaltune writer",
                path.display()
            ),
            LockError::Io(e) => write!(f, "lock i/o error: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<std::io::Error> for LockError {
    fn from(e: std::io::Error) -> Self {
        LockError::Io(e)
    }
}

/// A held advisory lock; releasing is dropping.
#[derive(Debug)]
pub struct DbLock {
    path: PathBuf,
    pid: u32,
    /// True when acquisition removed a dead holder's lock file.
    pub took_over_stale: bool,
}

/// Is `pid` a live process? On Linux, `/proc/<pid>` existence is the
/// authoritative cheap probe. Elsewhere, assume live (no takeover —
/// conservative: a stale lock then needs the documented manual removal).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

impl DbLock {
    /// Acquires the lock at `path`, taking over stale (dead-holder) locks
    /// and backing off on live contention until `opts.timeout`.
    ///
    /// # Errors
    ///
    /// [`LockError::Held`] when a live holder outlasts the timeout;
    /// [`LockError::Io`] on filesystem failures.
    pub fn acquire(path: &Path, opts: &LockOptions) -> Result<DbLock, LockError> {
        let pid = std::process::id();
        // aal-lint: allow(wall-clock, reason = "bounds the stale-lock wait; timing out a dead owner is not a determinism input")
        let started = Instant::now();
        let mut backoff = opts.initial_backoff;
        let mut took_over_stale = false;
        loop {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(path) {
                Ok(mut f) => {
                    // aal-lint: allow(unwrap, reason = "LockBody is a plain data struct; serialization cannot fail")
                    let body = serde_json::to_string(&LockBody { pid }).expect("pid serializes");
                    f.write_all(body.as_bytes())?;
                    f.sync_all()?;
                    return Ok(DbLock { path: path.to_path_buf(), pid, took_over_stale });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = read_holder(path);
                    match holder {
                        // Unreadable (mid-write or torn) locks get one
                        // backoff cycle to finish writing; if the holder
                        // pid then reads and is dead, take over.
                        Some(holder_pid) if !pid_alive(holder_pid) => {
                            match std::fs::remove_file(path) {
                                Ok(()) => took_over_stale = true,
                                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                                Err(e) => return Err(e.into()),
                            }
                            continue; // retry the atomic create immediately
                        }
                        _ => {
                            if started.elapsed() >= opts.timeout {
                                return Err(LockError::Held {
                                    pid: holder.unwrap_or(0),
                                    path: path.to_path_buf(),
                                });
                            }
                            std::thread::sleep(backoff.min(opts.max_backoff));
                            backoff = backoff.saturating_mul(2);
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The pid recorded in this lock.
    #[must_use]
    pub fn pid(&self) -> u32 {
        self.pid
    }
}

fn read_holder(path: &Path) -> Option<u32> {
    let body = std::fs::read_to_string(path).ok()?;
    serde_json::from_str::<LockBody>(&body).ok().map(|b| b.pid)
}

impl Drop for DbLock {
    fn drop(&mut self) {
        // Release only our own lock: if a takeover replaced the file after
        // e.g. a partition, removing someone else's lock would be worse
        // than leaking ours.
        if read_holder(&self.path) == Some(self.pid) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aaltune-lock-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("lock")
    }

    #[test]
    fn acquire_release_reacquire() {
        let path = tmp("basic");
        let l = DbLock::acquire(&path, &LockOptions::try_once()).unwrap();
        assert!(!l.took_over_stale);
        assert!(path.exists());
        drop(l);
        assert!(!path.exists(), "drop releases");
        let _l2 = DbLock::acquire(&path, &LockOptions::try_once()).unwrap();
    }

    #[test]
    fn live_contention_backs_off_and_errors_cleanly() {
        let path = tmp("contend");
        let held = DbLock::acquire(&path, &LockOptions::try_once()).unwrap();
        // Same-process contention: our own pid is alive, so the second
        // acquire must back off and fail with a Held error, leaving the
        // original lock file untouched.
        let started = Instant::now();
        let opts = LockOptions { timeout: Duration::from_millis(80), ..LockOptions::default() };
        let e = DbLock::acquire(&path, &opts).unwrap_err();
        assert!(started.elapsed() >= Duration::from_millis(80), "must actually back off");
        match e {
            LockError::Held { pid, .. } => assert_eq!(pid, std::process::id()),
            other => panic!("expected Held, got {other}"),
        }
        assert!(path.exists());
        drop(held);
        // The loser can retry successfully after release.
        let _retry = DbLock::acquire(&path, &LockOptions::try_once()).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn dead_holder_lock_is_taken_over() {
        let path = tmp("stale");
        // Forge a lock owned by a pid that cannot exist (beyond pid_max).
        std::fs::write(&path, "{\"pid\":4194304000}").unwrap();
        let l = DbLock::acquire(&path, &LockOptions::try_once()).unwrap();
        assert!(l.took_over_stale);
        assert_eq!(l.pid(), std::process::id());
    }

    #[test]
    fn unreadable_lock_is_not_stolen_from_a_live_writer() {
        let path = tmp("garbled");
        std::fs::write(&path, "not json").unwrap();
        let opts = LockOptions { timeout: Duration::from_millis(50), ..LockOptions::default() };
        // An unreadable lock never reads as dead, so acquisition times out
        // rather than clobbering what might be a mid-write live lock.
        assert!(matches!(DbLock::acquire(&path, &opts), Err(LockError::Held { pid: 0, .. })));
        assert!(path.exists());
    }
}

//! CRC-checksummed JSONL segment encoding.
//!
//! Each record is one line: eight lowercase hex digits (CRC32/IEEE of the
//! JSON body bytes), one space, the JSON body. The checksum is computed
//! over the exact bytes on disk, not a re-serialization, so verification
//! never depends on serializer stability. A line is *committed* when its
//! trailing newline is on disk; anything less is a torn tail.
//!
//! Scan policy mirrors trace-analysis's corrupt-line handling: a torn or
//! checksum-failed line is skipped and counted, never fatal. The scanner
//! distinguishes a torn *tail* (no trailing newline — the normal kill -9
//! case, safe to truncate away) from mid-file corruption (bit-rot or an
//! interleaved writer — preserved for quarantine).

use serde::de::DeserializeOwned;
use serde::Serialize;

/// CRC32 (IEEE 802.3, reflected) of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    // Small table-free bitwise variant: segments are read rarely (open,
    // fsck) and written one line at a time, so simplicity beats speed.
    let mut crc: u32 = !0;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes one record as a checksummed line (terminating newline included).
///
/// # Panics
///
/// Panics if `value` fails to serialize (a programming error: every stored
/// type is plain data).
#[must_use]
pub fn encode_line<T: Serialize>(value: &T) -> Vec<u8> {
    // aal-lint: allow(unwrap, reason = "db records are plain data; serialization cannot fail")
    let body = serde_json::to_string(value).expect("db record serializes");
    let mut line = format!("{:08x} ", crc32(body.as_bytes())).into_bytes();
    line.extend_from_slice(body.as_bytes());
    line.push(b'\n');
    line
}

/// Decodes one checksummed line (without its newline). `None` when the
/// checksum, framing, or JSON body is invalid.
#[must_use]
pub fn decode_line<T: DeserializeOwned>(line: &[u8]) -> Option<T> {
    if line.len() < 10 || line[8] != b' ' {
        return None;
    }
    let crc_hex = std::str::from_utf8(&line[..8]).ok()?;
    let want = u32::from_str_radix(crc_hex, 16).ok()?;
    let body = &line[9..];
    if crc32(body) != want {
        return None;
    }
    serde_json::from_str(std::str::from_utf8(body).ok()?).ok()
}

/// Outcome of scanning one segment's bytes.
#[derive(Debug, Default)]
pub struct SegmentScan<T> {
    /// Every record whose line committed and verified, in append order.
    pub records: Vec<T>,
    /// Corrupt *committed* lines (newline present, checksum or parse
    /// failed): the raw bytes, for quarantine.
    pub corrupt: Vec<Vec<u8>>,
    /// True when the file ends mid-line (torn by a kill mid-append).
    pub torn_tail: bool,
    /// Byte length of the prefix ending at the last committed line —
    /// truncating here removes the torn tail without touching any
    /// committed record.
    pub committed_bytes: u64,
}

/// Scans raw segment bytes, applying the skip-and-count policy.
#[must_use]
pub fn read_segment_bytes<T: DeserializeOwned>(data: &[u8]) -> SegmentScan<T> {
    let mut scan = SegmentScan {
        records: Vec::new(),
        corrupt: Vec::new(),
        torn_tail: false,
        committed_bytes: 0,
    };
    let mut offset = 0usize;
    while offset < data.len() {
        let Some(nl) = data[offset..].iter().position(|&b| b == b'\n') else {
            scan.torn_tail = true;
            break;
        };
        let line_end = offset + nl + 1;
        let line = &data[offset..line_end - 1];
        if !line.is_empty() {
            match decode_line::<T>(line) {
                Some(rec) => scan.records.push(rec),
                None => scan.corrupt.push(line.to_vec()),
            }
        }
        offset = line_end;
        scan.committed_bytes = offset as u64;
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let v = serde_json::json!({"a": 1, "b": "two"});
        let line = encode_line(&v);
        assert_eq!(*line.last().unwrap(), b'\n');
        let back: serde_json::Value = decode_line(&line[..line.len() - 1]).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let v = serde_json::json!({"x": 12345, "y": [1.5, 2.5]});
        let line = encode_line(&v);
        let body = &line[..line.len() - 1];
        // Flip the low bit: unlike a case flip (0x20), this changes the
        // parsed value of every hex digit and the content of every body
        // byte, so each position must be caught.
        for i in 0..body.len() {
            let mut bad = body.to_vec();
            bad[i] ^= 0x01;
            assert!(
                decode_line::<serde_json::Value>(&bad).is_none(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn scan_drops_torn_tail_and_counts_midfile_corruption() {
        let a = serde_json::json!({"n": 1});
        let b = serde_json::json!({"n": 2});
        let mut data = encode_line(&a);
        let b_line = encode_line(&b);

        // Torn tail: half of b's line.
        let mut torn = data.clone();
        torn.extend_from_slice(&b_line[..b_line.len() / 2]);
        let scan: SegmentScan<serde_json::Value> = read_segment_bytes(&torn);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_tail);
        assert!(scan.corrupt.is_empty());
        assert_eq!(scan.committed_bytes, data.len() as u64);

        // Mid-file corruption: a flipped byte inside a committed line.
        let mut mid = data.clone();
        let flip_at = 12;
        mid[flip_at] ^= 0xFF;
        mid.extend_from_slice(&b_line);
        let scan: SegmentScan<serde_json::Value> = read_segment_bytes(&mid);
        assert_eq!(scan.records.len(), 1, "the good record after the corrupt line survives");
        assert_eq!(scan.records[0], b);
        assert_eq!(scan.corrupt.len(), 1);
        assert!(!scan.torn_tail);

        // Clean data scans clean.
        data.extend_from_slice(&b_line);
        let scan: SegmentScan<serde_json::Value> = read_segment_bytes(&data);
        assert_eq!(scan.records.len(), 2);
        assert!(scan.corrupt.is_empty() && !scan.torn_tail);
        assert_eq!(scan.committed_bytes, data.len() as u64);
    }

    #[test]
    fn empty_and_blank_lines_are_ignored() {
        let scan: SegmentScan<serde_json::Value> = read_segment_bytes(b"\n\n");
        assert!(scan.records.is_empty() && scan.corrupt.is_empty());
    }
}

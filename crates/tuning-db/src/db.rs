//! The database proper: open, lookup, upsert, compact, fsck.
//!
//! Write path (the write-ahead contract): `upsert` merges the incoming
//! record with the in-memory state, appends the *merged* record to the
//! active segment, flushes the line to the OS, and only then updates the
//! in-memory map. A kill -9 at any byte offset therefore loses at most the
//! in-flight (uncommitted) line; every record whose newline reached the
//! file survives, and replay-by-merge is idempotent so double-application
//! after an interrupted compaction changes nothing.
//!
//! Read path: load `index.json` if present and valid (it is a pure
//! optimization), then replay every segment with `seq > covered_seq` on
//! top. A torn tail on the newest segment is truncated away at open; a
//! segment with mid-file corruption is left byte-for-byte intact (never
//! truncate committed data) and a fresh segment becomes the append target.

use crate::lock::{DbLock, LockError, LockOptions};
use crate::read::ReadHandle;
use crate::segment::{encode_line, read_segment_bytes, SegmentScan};
use crate::spec::{DbRecord, TaskSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};
use telemetry::sync::{read_or_recover, write_or_recover};

/// Version stamped into every record and the index snapshot.
pub const DB_SCHEMA_VERSION: u32 = 1;

/// Configurations retained per task spec.
pub const TOP_K: usize = 8;

const INDEX_FILE: &str = "index.json";
const SEGMENT_DIR: &str = "segments";
const QUARANTINE_FILE: &str = "quarantine.jsonl";
const LOCK_FILE: &str = "lock";

/// Database failures.
#[derive(Debug)]
pub enum DbError {
    /// Could not acquire the writer lock.
    Lock(LockError),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Lock(e) => write!(f, "{e}"),
            DbError::Io(e) => write!(f, "db i/o error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<LockError> for DbError {
    fn from(e: LockError) -> Self {
        DbError::Lock(e)
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

/// The atomically-swapped compacted snapshot.
#[derive(Debug, Serialize, Deserialize)]
struct Index {
    schema_version: u32,
    /// Segments with `seq <= covered_seq` are folded into `records`.
    covered_seq: u64,
    records: Vec<DbRecord>,
}

/// Summary counters for `aaltune db stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbStats {
    /// Distinct task specs stored.
    pub tasks: u64,
    /// Stored configurations across all specs.
    pub configs: u64,
    /// Live segment files on disk.
    pub segments: u64,
    /// Highest segment sequence folded into the index snapshot.
    pub covered_seq: u64,
    /// Corrupt lines skipped while opening (not yet quarantined).
    pub corrupt_lines: u64,
    /// Best stored GFLOPS across all specs (0 when empty).
    pub best_gflops: f64,
}

/// Outcome of [`TuningDb::fsck`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FsckReport {
    /// Segment files examined.
    pub segments: u64,
    /// Records that survived (after replay-merge).
    pub records: u64,
    /// Committed lines whose checksum or parse failed.
    pub corrupt_lines: u64,
    /// Segments ending in a torn (uncommitted) line.
    pub torn_tails: u64,
    /// True when the index file was missing or unreadable.
    pub index_damaged: bool,
    /// Corrupt lines moved to `quarantine.jsonl` (repair mode only).
    pub quarantined: u64,
    /// True when `--repair` rebuilt the index and segments.
    pub repaired: bool,
}

impl FsckReport {
    /// A store is healthy when no committed data is unreadable. Torn
    /// tails are the *expected* kill -9 residue and do not count against
    /// health; unquarantined corrupt lines and a damaged index do.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.repaired || (self.corrupt_lines == 0 && !self.index_damaged)
    }
}

/// An open, locked tuning database.
///
/// The in-memory map lives behind an `RwLock` shared with every
/// [`ReadHandle`] handed out by [`TuningDb::read_handle`], so concurrent
/// readers (e.g. a server's `GET /best` path) see each committed upsert
/// atomically — a record is inserted fully merged, never field-by-field.
pub struct TuningDb {
    root: PathBuf,
    _lock: DbLock,
    records: Arc<RwLock<BTreeMap<String, DbRecord>>>,
    active: File,
    active_seq: u64,
    covered_seq: u64,
    corrupt_lines: u64,
}

impl fmt::Debug for TuningDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TuningDb")
            .field("root", &self.root)
            .field("tasks", &read_or_recover(&self.records).len())
            .field("active_seq", &self.active_seq)
            .finish_non_exhaustive()
    }
}

fn segment_path(root: &Path, seq: u64) -> PathBuf {
    root.join(SEGMENT_DIR).join(format!("seg-{seq}.jsonl"))
}

/// Lists `(seq, path)` for every segment file, ascending by seq.
fn list_segments(root: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let dir = root.join(SEGMENT_DIR);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".jsonl")) else {
            continue;
        };
        if let Ok(seq) = seq.parse::<u64>() {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// Loads the index snapshot. `None` when missing or unreadable — the
/// caller falls back to full segment replay.
fn load_index(root: &Path) -> Option<Index> {
    let body = std::fs::read_to_string(root.join(INDEX_FILE)).ok()?;
    serde_json::from_str(&body).ok()
}

/// Atomically replaces the index snapshot (write-temp, fsync, rename).
fn store_index(root: &Path, index: &Index) -> std::io::Result<()> {
    let tmp = root.join("index.json.tmp");
    // aal-lint: allow(unwrap, reason = "index struct is plain data; serialization cannot fail")
    let body = serde_json::to_string_pretty(index).expect("index serializes");
    {
        // aal-lint: allow(raw-artifact-write, reason = "temp side of temp+fsync+rename")
        let mut f = File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, root.join(INDEX_FILE))
}

fn merge_into(records: &mut BTreeMap<String, DbRecord>, rec: DbRecord) {
    match records.entry(rec.spec.key()) {
        std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&rec, TOP_K),
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(rec);
        }
    }
}

/// Shared nearest-neighbor scan over a record map (used by both the
/// locked writer and [`ReadHandle`]): Euclidean distance over the
/// log-shape embedding, exact spec excluded, transferability-gated,
/// ties broken by key for determinism.
pub(crate) fn nearest_in(
    records: &BTreeMap<String, DbRecord>,
    spec: &TaskSpec,
    feature: &[f64],
    k: usize,
) -> Vec<DbRecord> {
    let mut scored: Vec<(f64, &DbRecord)> = records
        .values()
        .filter(|r| r.spec != *spec && spec.transferable_from(&r.spec))
        .filter(|r| r.feature.len() == feature.len())
        .map(|r| {
            let d: f64 = r.feature.iter().zip(feature).map(|(a, b)| (a - b) * (a - b)).sum();
            (d, r)
        })
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.spec.key().cmp(&b.1.spec.key())));
    scored.into_iter().take(k).map(|(_, r)| r.clone()).collect()
}

impl TuningDb {
    /// Opens (creating if absent) the database at `root`, acquiring the
    /// writer lock with `lock_opts`. Replays segments over the index
    /// snapshot, truncates a torn tail on the newest segment, and skips
    /// (counting) any mid-file corrupt line.
    ///
    /// # Errors
    ///
    /// [`DbError::Lock`] when a live writer holds the lock past the
    /// timeout; [`DbError::Io`] on filesystem failures.
    pub fn open(root: &Path, lock_opts: &LockOptions) -> Result<TuningDb, DbError> {
        std::fs::create_dir_all(root.join(SEGMENT_DIR))?;
        let lock = DbLock::acquire(&root.join(LOCK_FILE), lock_opts)?;
        let tel = telemetry::global();
        if lock.took_over_stale {
            tel.count(crate::DB_TAKEOVER_COUNTER, 1);
        }

        let mut records = BTreeMap::new();
        let mut covered_seq = 0;
        if let Some(index) = load_index(root) {
            covered_seq = index.covered_seq;
            for rec in index.records {
                records.insert(rec.spec.key(), rec);
            }
        }

        let mut corrupt_lines = 0u64;
        let segments = list_segments(root)?;
        let mut tail_reusable = None;
        for (i, (seq, path)) in segments.iter().enumerate() {
            if *seq <= covered_seq {
                continue; // already folded into the index snapshot
            }
            let data = std::fs::read(path)?;
            let scan: SegmentScan<DbRecord> = read_segment_bytes(&data);
            corrupt_lines += scan.corrupt.len() as u64;
            for rec in scan.records {
                merge_into(&mut records, rec);
            }
            if i == segments.len() - 1 {
                if scan.torn_tail && scan.corrupt.is_empty() {
                    // The normal kill -9 residue: drop the uncommitted
                    // tail so the next append starts on a line boundary.
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(scan.committed_bytes)?;
                    f.sync_all()?;
                }
                // Mid-file corruption means this file holds evidence fsck
                // may quarantine — never append into it again.
                tail_reusable = scan.corrupt.is_empty().then_some(*seq);
            }
        }
        if corrupt_lines > 0 {
            tel.count(crate::DB_CORRUPT_COUNTER, corrupt_lines);
        }

        let highest = segments.last().map_or(covered_seq, |(seq, _)| *seq);
        let active_seq = match tail_reusable {
            Some(seq) if seq > covered_seq => seq,
            _ => highest + 1,
        };
        let active =
            OpenOptions::new().append(true).create(true).open(segment_path(root, active_seq))?;

        #[allow(clippy::cast_precision_loss)]
        tel.gauge(crate::DB_TASKS_GAUGE, records.len() as f64);
        Ok(TuningDb {
            root: root.to_path_buf(),
            _lock: lock,
            records: Arc::new(RwLock::new(records)),
            active,
            active_seq,
            covered_seq,
            corrupt_lines,
        })
    }

    /// A cheap cloneable read-only view sharing this writer's in-memory
    /// map. Lookups through the handle stay coherent with concurrent
    /// [`TuningDb::upsert`] calls (each upsert swaps in a fully merged
    /// record under the write lock).
    #[must_use]
    pub fn read_handle(&self) -> ReadHandle {
        ReadHandle::new(Arc::clone(&self.records))
    }

    /// The database root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of distinct task specs stored.
    #[must_use]
    pub fn len(&self) -> usize {
        read_or_recover(&self.records).len()
    }

    /// True when no task has been stored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        read_or_recover(&self.records).is_empty()
    }

    /// All stored records, cloned out in key order.
    #[must_use]
    pub fn records(&self) -> Vec<DbRecord> {
        read_or_recover(&self.records).values().cloned().collect()
    }

    /// Exact-hit lookup, bumping `db.hit` / `db.miss`. Returns a clone so
    /// no lock is held across the caller's use of the record.
    #[must_use]
    pub fn lookup(&self, spec: &TaskSpec) -> Option<DbRecord> {
        let got = read_or_recover(&self.records).get(&spec.key()).cloned();
        let tel = telemetry::global();
        tel.count(if got.is_some() { crate::DB_HIT_COUNTER } else { crate::DB_MISS_COUNTER }, 1);
        got
    }

    /// The `k` transfer-candidate records nearest to `feature` (Euclidean
    /// over the log-shape embedding), nearest first. Excludes the exact
    /// spec itself; only specs [`TaskSpec::transferable_from`] `spec` with
    /// matching feature arity are considered.
    #[must_use]
    pub fn nearest(&self, spec: &TaskSpec, feature: &[f64], k: usize) -> Vec<DbRecord> {
        nearest_in(&read_or_recover(&self.records), spec, feature, k)
    }

    /// Merges `rec` into the store: append the merged record to the active
    /// segment (write-ahead), flush, then apply in memory. Committed once
    /// this returns.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] when the append fails — in-memory state is then
    /// unchanged (the un-flushed line is at worst a torn tail for the
    /// next open).
    pub fn upsert(&mut self, rec: DbRecord) -> Result<(), DbError> {
        let key = rec.spec.key();
        let merged = match read_or_recover(&self.records).get(&key) {
            Some(existing) => {
                let mut m = existing.clone();
                m.merge(&rec, TOP_K);
                m
            }
            None => rec,
        };
        let line = encode_line(&merged);
        self.active.write_all(&line)?;
        self.active.flush()?;
        // Readers never see the record mid-merge: the fully merged clone
        // is swapped in under the write lock only after the append landed.
        let tasks = {
            let mut records = write_or_recover(&self.records);
            records.insert(key, merged);
            records.len()
        };
        let tel = telemetry::global();
        tel.count(crate::DB_UPSERT_COUNTER, 1);
        #[allow(clippy::cast_precision_loss)]
        tel.gauge(crate::DB_TASKS_GAUGE, tasks as f64);
        Ok(())
    }

    /// Folds every segment into a fresh atomically-swapped index snapshot,
    /// deletes the covered segments, and starts a new active segment. A
    /// kill between any two steps is safe: replaying a covered segment
    /// over the index is an idempotent merge.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem failures.
    pub fn compact(&mut self) -> Result<(), DbError> {
        let covered = self.active_seq;
        let index = Index {
            schema_version: DB_SCHEMA_VERSION,
            covered_seq: covered,
            records: read_or_recover(&self.records).values().cloned().collect(),
        };
        store_index(&self.root, &index)?;
        self.covered_seq = covered;
        for (seq, path) in list_segments(&self.root)? {
            if seq <= covered {
                std::fs::remove_file(path)?;
            }
        }
        self.active_seq = covered + 1;
        self.active = OpenOptions::new()
            .append(true)
            .create(true)
            .open(segment_path(&self.root, self.active_seq))?;
        Ok(())
    }

    /// Current summary counters.
    #[must_use]
    pub fn stats(&self) -> DbStats {
        let segments = list_segments(&self.root).map(|s| s.len() as u64).unwrap_or(0);
        let records = read_or_recover(&self.records);
        DbStats {
            tasks: records.len() as u64,
            configs: records.values().map(|r| r.top_k.len() as u64).sum(),
            segments,
            covered_seq: self.covered_seq,
            corrupt_lines: self.corrupt_lines,
            best_gflops: records.values().map(|r| r.best_gflops).fold(0.0_f64, f64::max),
        }
    }

    /// Verifies (and with `repair`, rebuilds) the store at `root` without
    /// going through the truncating open path. Read-only unless `repair`:
    /// repair quarantines corrupt committed lines into `quarantine.jsonl`,
    /// rebuilds `index.json` from every surviving record, and removes the
    /// folded segments.
    ///
    /// # Errors
    ///
    /// [`DbError::Lock`] / [`DbError::Io`] as for [`TuningDb::open`].
    pub fn fsck(root: &Path, repair: bool, lock_opts: &LockOptions) -> Result<FsckReport, DbError> {
        std::fs::create_dir_all(root.join(SEGMENT_DIR))?;
        let _lock = DbLock::acquire(&root.join(LOCK_FILE), lock_opts)?;

        let mut records = BTreeMap::new();
        let index = load_index(root);
        let index_damaged = index.is_none() && root.join(INDEX_FILE).exists();
        let mut covered_seq = 0;
        if let Some(index) = index {
            covered_seq = index.covered_seq;
            for rec in index.records {
                records.insert(rec.spec.key(), rec);
            }
        }

        let mut report = FsckReport {
            segments: 0,
            records: 0,
            corrupt_lines: 0,
            torn_tails: 0,
            index_damaged,
            quarantined: 0,
            repaired: false,
        };
        let mut corrupt_raw: Vec<Vec<u8>> = Vec::new();
        let segments = list_segments(root)?;
        let mut max_seq = covered_seq;
        for (seq, path) in &segments {
            report.segments += 1;
            max_seq = max_seq.max(*seq);
            if *seq <= covered_seq {
                // Folded into the index already; still scan for damage so
                // the report sees bit-rot under the snapshot.
                let scan: SegmentScan<DbRecord> = read_segment_bytes(&std::fs::read(path)?);
                report.corrupt_lines += scan.corrupt.len() as u64;
                report.torn_tails += u64::from(scan.torn_tail);
                corrupt_raw.extend(scan.corrupt);
                continue;
            }
            let scan: SegmentScan<DbRecord> = read_segment_bytes(&std::fs::read(path)?);
            report.corrupt_lines += scan.corrupt.len() as u64;
            report.torn_tails += u64::from(scan.torn_tail);
            corrupt_raw.extend(scan.corrupt);
            for rec in scan.records {
                merge_into(&mut records, rec);
            }
        }
        report.records = records.len() as u64;
        if report.corrupt_lines > 0 {
            telemetry::global().count(crate::DB_CORRUPT_COUNTER, report.corrupt_lines);
        }

        if repair {
            if !corrupt_raw.is_empty() {
                let mut q = OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(root.join(QUARANTINE_FILE))?;
                for line in &corrupt_raw {
                    q.write_all(line)?;
                    q.write_all(b"\n")?;
                }
                q.sync_all()?;
                report.quarantined = corrupt_raw.len() as u64;
            }
            let index = Index {
                schema_version: DB_SCHEMA_VERSION,
                covered_seq: max_seq,
                records: records.into_values().collect(),
            };
            store_index(root, &index)?;
            for (seq, path) in segments {
                if seq <= max_seq {
                    std::fs::remove_file(path)?;
                }
            }
            report.repaired = true;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopConfig;
    use dnn_graph::task::{TaskKind, TuningTask, Workload};
    use schedule::{ConfigSpace, Knob};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aaltune-db-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn conv_task(out_channels: usize) -> TuningTask {
        TuningTask {
            kind: TaskKind::Conv2d,
            name: format!("m.f{out_channels}"),
            workload: Workload::Conv2d {
                batch: 1,
                in_channels: 16,
                out_channels,
                height: 28,
                width: 28,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                groups: 1,
            },
            occurrences: 1,
        }
    }

    fn space() -> ConfigSpace {
        ConfigSpace::new("s", vec![Knob::split("a", 64, 2), Knob::choice("u", vec![0, 512])])
    }

    fn record(out_channels: usize, gflops: f64) -> DbRecord {
        let task = conv_task(out_channels);
        let s = space();
        DbRecord {
            schema_version: DB_SCHEMA_VERSION,
            spec: TaskSpec::of(&task, &s, "sim"),
            feature: TaskSpec::features(&task),
            method: "bted+bao".into(),
            seed: 0,
            n_trials: 8,
            best_gflops: gflops,
            top_k: vec![TopConfig {
                config_index: 3,
                choices: s.config(3).unwrap().choices,
                gflops,
                latency_s: 1e-3,
            }],
            curve: vec![gflops / 2.0, gflops],
        }
    }

    #[test]
    fn upsert_survives_reopen() {
        let root = tmp("reopen");
        {
            let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
            db.upsert(record(32, 50.0)).unwrap();
            db.upsert(record(64, 75.0)).unwrap();
            db.upsert(record(32, 60.0)).unwrap(); // merge: better best wins
        }
        let db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
        assert_eq!(db.len(), 2);
        let spec = TaskSpec::of(&conv_task(32), &space(), "sim");
        assert_eq!(db.lookup(&spec).unwrap().best_gflops, 60.0);
    }

    #[test]
    fn torn_tail_is_truncated_and_committed_records_survive() {
        let root = tmp("torn");
        {
            let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
            db.upsert(record(32, 50.0)).unwrap();
            db.upsert(record(64, 75.0)).unwrap();
        }
        // Simulate a kill -9 mid-append: chop bytes off the active segment.
        let (_, seg) = list_segments(&root).unwrap().pop().unwrap();
        let data = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &data[..data.len() - 7]).unwrap();

        let db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
        assert_eq!(db.len(), 1, "torn record is uncommitted; committed one survives");
        assert_eq!(db.stats().corrupt_lines, 0, "a torn tail is not corruption");
        // The tail was truncated: a re-scan of the file is clean.
        let scan: SegmentScan<DbRecord> = read_segment_bytes(&std::fs::read(&seg).unwrap());
        assert!(!scan.torn_tail);
    }

    #[test]
    fn midfile_corruption_is_skipped_counted_and_never_truncated() {
        let root = tmp("midfile");
        {
            let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
            db.upsert(record(32, 50.0)).unwrap();
            db.upsert(record(64, 75.0)).unwrap();
        }
        let (_, seg) = list_segments(&root).unwrap().pop().unwrap();
        let mut data = std::fs::read(&seg).unwrap();
        data[20] ^= 0xFF; // bit-rot inside the first committed line
        let len_before = data.len();
        std::fs::write(&seg, &data).unwrap();

        {
            let db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
            assert_eq!(db.len(), 1, "the undamaged record survives");
            assert_eq!(db.stats().corrupt_lines, 1);
        }
        assert_eq!(
            std::fs::read(&seg).unwrap().len(),
            len_before,
            "corrupt evidence is preserved, never truncated"
        );

        // fsck --repair quarantines the bad line and rebuilds clean.
        let report = TuningDb::fsck(&root, true, &LockOptions::try_once()).unwrap();
        assert_eq!(report.quarantined, 1);
        assert!(report.healthy());
        assert!(root.join(QUARANTINE_FILE).exists());
        let report = TuningDb::fsck(&root, false, &LockOptions::try_once()).unwrap();
        assert_eq!(report.corrupt_lines, 0, "repair left no corrupt survivors");
        assert!(report.healthy());
    }

    #[test]
    fn compact_folds_segments_and_replay_is_idempotent() {
        let root = tmp("compact");
        let spec = TaskSpec::of(&conv_task(32), &space(), "sim");
        {
            let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
            db.upsert(record(32, 50.0)).unwrap();
            db.compact().unwrap();
            db.upsert(record(64, 75.0)).unwrap();
            assert_eq!(db.stats().covered_seq, 1);
        }
        // Interrupted compaction: index exists AND the covered segment
        // still does (simulated by copying it back under a covered seq).
        {
            let db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
            let rec = db.lookup(&spec).unwrap();
            let line = encode_line(&rec);
            std::fs::write(segment_path(&root, 1), line).unwrap();
        }
        let db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
        assert_eq!(db.len(), 2, "replaying a covered record changes nothing");
        assert_eq!(db.lookup(&spec).unwrap().best_gflops, 50.0);
    }

    #[test]
    fn missing_index_is_rebuilt_from_segments_by_fsck() {
        let root = tmp("fsck-index");
        {
            let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
            db.upsert(record(32, 50.0)).unwrap();
            db.compact().unwrap();
            db.upsert(record(64, 75.0)).unwrap();
        }
        std::fs::write(root.join(INDEX_FILE), b"{ not json").unwrap();
        let report = TuningDb::fsck(&root, false, &LockOptions::try_once()).unwrap();
        assert!(report.index_damaged);
        assert!(!report.healthy());
        let report = TuningDb::fsck(&root, true, &LockOptions::try_once()).unwrap();
        assert!(report.repaired);
        // A damaged index loses the compacted record (the segment that
        // held it was deleted by compaction) but never blocks opening.
        let db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
        assert!(!db.is_empty());
        drop(db); // release the writer lock before fsck re-acquires it
        let report = TuningDb::fsck(&root, false, &LockOptions::try_once()).unwrap();
        assert!(report.healthy());
    }

    #[test]
    fn nearest_ranks_by_shape_distance_and_gates_on_transferability() {
        let root = tmp("nearest");
        let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
        db.upsert(record(32, 50.0)).unwrap();
        db.upsert(record(48, 60.0)).unwrap();
        db.upsert(record(512, 70.0)).unwrap();
        let target = conv_task(40);
        let spec = TaskSpec::of(&target, &space(), "sim");
        let feature = TaskSpec::features(&target);
        let got = db.nearest(&spec, &feature, 2);
        assert_eq!(got.len(), 2);
        assert!(got[0].spec.workload.contains(":f48:"), "48 is nearest to 40 in log space");
        assert!(got[1].spec.workload.contains(":f32:"));
        // A different device is never a transfer source.
        let other_dev = TaskSpec { device: "other".into(), ..spec.clone() };
        assert!(db.nearest(&other_dev, &feature, 2).is_empty());
        // The exact spec itself is excluded.
        let exact = TaskSpec::of(&conv_task(32), &space(), "sim");
        let exact_feat = TaskSpec::features(&conv_task(32));
        assert!(db.nearest(&exact, &exact_feat, 9).iter().all(|r| r.spec != exact));
    }

    #[test]
    fn second_writer_backs_off_while_first_holds_the_lock() {
        let root = tmp("locked");
        let db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
        let err = TuningDb::open(&root, &LockOptions::try_once()).unwrap_err();
        assert!(matches!(err, DbError::Lock(LockError::Held { .. })), "{err}");
        drop(db);
        TuningDb::open(&root, &LockOptions::try_once()).unwrap();
    }
}

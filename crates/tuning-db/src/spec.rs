//! Canonical task specs and the records stored against them.

use dnn_graph::task::{TaskKind, TuningTask, Workload};
use schedule::{Config, ConfigSpace};
use serde::{Deserialize, Serialize};

/// The canonical identity of one tuning task: everything that determines
/// whether a stored configuration is *exactly* reusable. Two tasks with
/// the same spec have identical configuration spaces on identical
/// simulated hardware, so their measurements are interchangeable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Template family label (`"conv2d"`, `"depthwise_conv2d"`, `"dense"`).
    pub kind: String,
    /// Canonical workload string (the full shape tuple, not the display
    /// form — strides and paddings in both axes).
    pub workload: String,
    /// Knob-space fingerprint: `name/cardinality` per knob in digit order.
    /// Guards against template changes: a space whose knobs moved is a
    /// different spec even for the same workload.
    pub knob_fingerprint: String,
    /// Device identity the measurements were taken on.
    pub device: String,
}

impl TaskSpec {
    /// Builds the spec of `task` tuned over `space` on `device`.
    #[must_use]
    pub fn of(task: &TuningTask, space: &ConfigSpace, device: &str) -> TaskSpec {
        TaskSpec {
            kind: task.kind.to_string(),
            workload: canonical_workload(&task.workload),
            knob_fingerprint: fingerprint(space),
            device: device.to_string(),
        }
    }

    /// The flat store key. Stable across processes: every component is a
    /// deterministic function of the task, template, and device.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}|{}|{}|{}", self.kind, self.workload, self.knob_fingerprint, self.device)
    }

    /// Log-scaled shape embedding for nearest-neighbor transfer. Only
    /// comparable between specs of the same `kind`; the distance is
    /// Euclidean over log dimensions, so "twice the channels" is one unit
    /// apart at any absolute size.
    #[must_use]
    pub fn features(task: &TuningTask) -> Vec<f64> {
        #[allow(clippy::cast_precision_loss)]
        fn ln(x: usize) -> f64 {
            (x as f64).ln_1p()
        }
        match task.workload {
            Workload::Conv2d {
                batch,
                in_channels,
                out_channels,
                height,
                width,
                kernel,
                stride,
                padding,
                groups,
            } => vec![
                ln(batch),
                ln(in_channels),
                ln(out_channels),
                ln(height),
                ln(width),
                ln(kernel.0),
                ln(kernel.1),
                ln(stride.0),
                ln(stride.1),
                ln(padding.0),
                ln(padding.1),
                ln(groups),
            ],
            Workload::Dense { batch, in_features, out_features } => {
                vec![ln(batch), ln(in_features), ln(out_features)]
            }
        }
    }

    /// True when `other` is a candidate source for warm-start transfer
    /// into this spec: same template family and same device. (Choice
    /// clipping handles differing knob cardinalities.)
    #[must_use]
    pub fn transferable_from(&self, other: &TaskSpec) -> bool {
        self.kind == other.kind
            && self.device == other.device
            && knob_count(&self.knob_fingerprint) == knob_count(&other.knob_fingerprint)
    }
}

/// The canonical (non-lossy) workload string.
fn canonical_workload(w: &Workload) -> String {
    match *w {
        Workload::Conv2d {
            batch,
            in_channels,
            out_channels,
            height,
            width,
            kernel,
            stride,
            padding,
            groups,
        } => format!(
            "conv2d:n{batch}:c{in_channels}:f{out_channels}:h{height}:w{width}:k{}x{}:s{}x{}:p{}x{}:g{groups}",
            kernel.0, kernel.1, stride.0, stride.1, padding.0, padding.1
        ),
        Workload::Dense { batch, in_features, out_features } => {
            format!("dense:n{batch}:i{in_features}:o{out_features}")
        }
    }
}

/// `name/cardinality` per knob, in digit order.
fn fingerprint(space: &ConfigSpace) -> String {
    space
        .knobs()
        .iter()
        .map(|k| format!("{}/{}", k.name(), k.cardinality()))
        .collect::<Vec<_>>()
        .join(",")
}

fn knob_count(fingerprint: &str) -> usize {
    if fingerprint.is_empty() {
        0
    } else {
        fingerprint.split(',').count()
    }
}

/// One stored configuration with its measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopConfig {
    /// Flat index in the task's own space (valid only for exact hits).
    pub config_index: u64,
    /// Per-knob choice indices — the transferable representation: other
    /// spaces map these by clipping, so they survive template resizes.
    pub choices: Vec<usize>,
    /// Measured GFLOPS.
    pub gflops: f64,
    /// Measured latency, seconds.
    pub latency_s: f64,
}

/// Everything the database remembers about one task spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbRecord {
    /// Record format version ([`crate::DB_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// The canonical spec this record belongs to.
    pub spec: TaskSpec,
    /// Shape embedding of the task (see [`TaskSpec::features`]).
    pub feature: Vec<f64>,
    /// Method label that produced the best result.
    pub method: String,
    /// Seed of the producing run.
    pub seed: u64,
    /// Trials the producing run measured.
    pub n_trials: u64,
    /// Best measured GFLOPS.
    pub best_gflops: f64,
    /// Best configurations, best first, at most [`crate::TOP_K`].
    pub top_k: Vec<TopConfig>,
    /// Decimated best-so-far curve of the producing run (≤ 64 points),
    /// for trials-to-best analysis without replaying logs.
    pub curve: Vec<f64>,
}

impl DbRecord {
    /// Merges `incoming` into `self`. Idempotent (re-applying the same
    /// record is a no-op) and commutative enough for segment replay after
    /// an interrupted compaction: configurations union by choices, rank by
    /// GFLOPS, truncate to top-k; run-level fields follow whichever side
    /// holds the better best.
    pub fn merge(&mut self, incoming: &DbRecord, top_k: usize) {
        if incoming.best_gflops > self.best_gflops {
            self.method = incoming.method.clone();
            self.seed = incoming.seed;
            self.n_trials = incoming.n_trials;
            self.best_gflops = incoming.best_gflops;
            self.curve = incoming.curve.clone();
        }
        for c in &incoming.top_k {
            if let Some(existing) = self.top_k.iter_mut().find(|e| e.choices == c.choices) {
                if c.gflops > existing.gflops {
                    *existing = c.clone();
                }
            } else {
                self.top_k.push(c.clone());
            }
        }
        self.top_k.sort_by(|a, b| {
            b.gflops.total_cmp(&a.gflops).then_with(|| a.config_index.cmp(&b.config_index))
        });
        self.top_k.truncate(top_k);
    }

    /// The stored best configurations mapped into `space`, best first,
    /// deduplicated after clipping. Empty when the knob counts mismatch.
    #[must_use]
    pub fn configs_for(&self, space: &ConfigSpace, k: usize) -> Vec<Config> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for c in &self.top_k {
            if out.len() >= k {
                break;
            }
            let Some(cfg) = space.map_choices(&c.choices) else { continue };
            if seen.insert(cfg.index) {
                out.push(cfg);
            }
        }
        out
    }
}

/// Decimates a convergence curve to at most `max_points` samples,
/// always keeping the final value.
#[must_use]
pub fn decimate_curve(curve: &[f64], max_points: usize) -> Vec<f64> {
    if curve.len() <= max_points || max_points == 0 {
        return curve.to_vec();
    }
    let mut out = Vec::with_capacity(max_points);
    for i in 0..max_points - 1 {
        out.push(curve[i * curve.len() / max_points]);
    }
    // aal-lint: allow(unwrap, reason = "the curve is longer than max_points on this branch")
    out.push(*curve.last().expect("non-empty: longer than max_points"));
    out
}

/// Convenience: is `TaskKind` display stable with spec kinds? (Used by
/// tests; the public API goes through [`TaskSpec::of`].)
#[must_use]
pub fn kind_label(kind: TaskKind) -> String {
    kind.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::Knob;

    fn task() -> TuningTask {
        TuningTask {
            kind: TaskKind::Conv2d,
            name: "m.T1".into(),
            workload: Workload::Conv2d {
                batch: 1,
                in_channels: 16,
                out_channels: 32,
                height: 28,
                width: 28,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                groups: 1,
            },
            occurrences: 2,
        }
    }

    fn space(extent: usize) -> ConfigSpace {
        ConfigSpace::new("s", vec![Knob::split("a", extent, 2), Knob::choice("u", vec![0, 512])])
    }

    #[test]
    fn spec_key_is_canonical_and_distinguishes_devices() {
        let t = task();
        let s = space(64);
        let a = TaskSpec::of(&t, &s, "gtx1080ti");
        let b = TaskSpec::of(&t, &s, "gtx1080ti");
        assert_eq!(a.key(), b.key());
        let v100 = TaskSpec::of(&t, &s, "v100");
        assert_ne!(a.key(), v100.key());
        // The full shape tuple reaches the key (both padding axes).
        assert!(a.key().contains("p1x1"), "{}", a.key());
        assert!(a.key().contains("a/7,u/2"), "{}", a.key());
    }

    #[test]
    fn knob_fingerprint_changes_with_the_template() {
        let t = task();
        let a = TaskSpec::of(&t, &space(64), "d");
        let b = TaskSpec::of(&t, &space(16), "d");
        assert_ne!(a.key(), b.key(), "different cardinalities are different specs");
        assert!(a.transferable_from(&b), "but still transfer candidates");
    }

    #[test]
    fn features_are_log_scaled_and_kind_gated() {
        let t = task();
        let f = TaskSpec::features(&t);
        assert_eq!(f.len(), 12);
        assert!(f.iter().all(|x| x.is_finite()));
        let dense = TuningTask {
            kind: TaskKind::Dense,
            name: "d".into(),
            workload: Workload::Dense { batch: 1, in_features: 64, out_features: 10 },
            occurrences: 1,
        };
        assert_eq!(TaskSpec::features(&dense).len(), 3);
        let s = space(64);
        let conv_spec = TaskSpec::of(&t, &s, "d");
        let dense_spec = TaskSpec::of(&dense, &s, "d");
        assert!(!conv_spec.transferable_from(&dense_spec));
    }

    #[test]
    fn merge_is_idempotent_and_keeps_top_k_ranked() {
        let s = space(64);
        let t = task();
        let spec = TaskSpec::of(&t, &s, "d");
        let mk = |idx: u64, g: f64| TopConfig {
            config_index: idx,
            choices: s.config(idx).unwrap().choices,
            gflops: g,
            latency_s: 1e-3,
        };
        let mut a = DbRecord {
            schema_version: 1,
            spec: spec.clone(),
            feature: TaskSpec::features(&t),
            method: "bted+bao".into(),
            seed: 0,
            n_trials: 50,
            best_gflops: 80.0,
            top_k: vec![mk(1, 80.0), mk(2, 40.0)],
            curve: vec![40.0, 80.0],
        };
        let b = DbRecord {
            best_gflops: 99.0,
            top_k: vec![mk(3, 99.0), mk(2, 55.0)],
            curve: vec![99.0],
            seed: 7,
            ..a.clone()
        };
        a.merge(&b, 3);
        assert_eq!(a.best_gflops, 99.0);
        assert_eq!(a.seed, 7);
        assert_eq!(a.top_k.len(), 3);
        assert_eq!(a.top_k[0].config_index, 3);
        assert_eq!(a.top_k[1].config_index, 1);
        assert_eq!(a.top_k[2].gflops, 55.0, "same choices keep the better measurement");
        let before = a.clone();
        a.merge(&b, 3);
        assert_eq!(a, before, "merge must be idempotent");
    }

    #[test]
    fn configs_for_maps_best_first_and_dedupes() {
        let big = space(1024);
        let small = space(16);
        let t = task();
        let rec = DbRecord {
            schema_version: 1,
            spec: TaskSpec::of(&t, &big, "d"),
            feature: TaskSpec::features(&t),
            method: "bted+bao".into(),
            seed: 0,
            n_trials: 10,
            best_gflops: 9.0,
            top_k: (0..4)
                .map(|i| TopConfig {
                    config_index: big.len() - 1 - i,
                    choices: big.config(big.len() - 1 - i).unwrap().choices,
                    gflops: 9.0 - i as f64,
                    latency_s: 1e-3,
                })
                .collect(),
            curve: vec![9.0],
        };
        let got = rec.configs_for(&small, 4);
        assert!(!got.is_empty());
        let mut seen = std::collections::HashSet::new();
        for cfg in &got {
            assert!(seen.insert(cfg.index), "deduplicated after clipping");
            assert!(cfg.index < small.len());
        }
        // Identity mapping into the original space returns the stored set.
        let same = rec.configs_for(&big, 4);
        assert_eq!(same.len(), 4);
        assert_eq!(same[0].index, big.len() - 1);
    }

    #[test]
    fn decimate_keeps_endpoints_and_caps_length() {
        let curve: Vec<f64> = (0..1000).map(f64::from).collect();
        let d = decimate_curve(&curve, 64);
        assert_eq!(d.len(), 64);
        assert_eq!(*d.last().unwrap(), 999.0);
        assert_eq!(d[0], 0.0);
        let short = decimate_curve(&[1.0, 2.0], 64);
        assert_eq!(short, vec![1.0, 2.0]);
        assert_eq!(kind_label(TaskKind::Conv2d), "conv2d");
    }
}

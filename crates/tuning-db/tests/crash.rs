//! Crash-safety properties: a writer killed at *any* byte offset
//! mid-append never loses a committed record, never blocks a later open,
//! and `fsck --repair` always converges to a store with zero corrupt
//! survivors. Plus a genuine two-process lock-contention check.

use dnn_graph::task::{TaskKind, TuningTask, Workload};
use proptest::prelude::*;
use schedule::{ConfigSpace, Knob};
use std::path::PathBuf;
use std::time::Duration;
use tuning_db::{
    read_segment_bytes, DbLock, DbRecord, LockError, LockOptions, SegmentScan, TaskSpec, TopConfig,
    TuningDb,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aaltune-dbcrash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn space() -> ConfigSpace {
    ConfigSpace::new("s", vec![Knob::split("a", 64, 2), Knob::choice("u", vec![0, 512])])
}

fn record(out_channels: usize, gflops: f64) -> DbRecord {
    let task = TuningTask {
        kind: TaskKind::Conv2d,
        name: format!("m.f{out_channels}"),
        workload: Workload::Conv2d {
            batch: 1,
            in_channels: 16,
            out_channels,
            height: 28,
            width: 28,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            groups: 1,
        },
        occurrences: 1,
    };
    let s = space();
    DbRecord {
        schema_version: tuning_db::DB_SCHEMA_VERSION,
        spec: TaskSpec::of(&task, &s, "sim"),
        feature: TaskSpec::features(&task),
        method: "bted+bao".into(),
        seed: 0,
        n_trials: 4,
        best_gflops: gflops,
        top_k: vec![TopConfig {
            config_index: 5,
            choices: s.config(5).unwrap().choices,
            gflops,
            latency_s: 1e-3,
        }],
        curve: vec![gflops],
    }
}

proptest! {
    /// Kill the writer at an arbitrary byte offset: write `n` records
    /// through the real upsert path, then truncate the active segment at
    /// `cut` bytes from the end — the on-disk image a kill -9 mid-append
    /// leaves behind. Every record whose line survived intact must be
    /// recovered, fsck must report the store healthy after repair with
    /// zero corrupt survivors, and the database must reopen cleanly.
    #[test]
    fn kill_at_any_offset_keeps_every_committed_record(
        n in 1usize..6,
        cut in 0usize..400,
        case in 0u64..10_000,
    ) {
        let root = tmp(&format!("prop-{case}"));
        {
            let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
            for i in 0..n {
                db.upsert(record(8 << i, 10.0 * (i + 1) as f64)).unwrap();
            }
        }
        let seg = root.join("segments").join("seg-1.jsonl");
        let data = std::fs::read(&seg).unwrap();
        let cut = cut.min(data.len());
        let torn = &data[..data.len() - cut];
        std::fs::write(&seg, torn).unwrap();

        // Committed = full lines (newline on disk) in the surviving prefix.
        let expect: SegmentScan<DbRecord> = read_segment_bytes(torn);
        prop_assert!(expect.corrupt.is_empty(), "truncation can only tear the tail");

        let report = TuningDb::fsck(&root, true, &LockOptions::try_once()).unwrap();
        prop_assert!(report.healthy());
        prop_assert_eq!(report.corrupt_lines, 0, "a torn tail must never read as corruption");
        prop_assert_eq!(report.records as usize, expect.records.len());
        prop_assert_eq!(report.quarantined, 0);

        let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
        prop_assert_eq!(db.len(), expect.records.len());
        for rec in &expect.records {
            prop_assert_eq!(db.lookup(&rec.spec).as_ref(), Some(rec));
        }
        // The reopened store accepts new writes: the crash cost at most
        // the uncommitted tail, never the ability to continue.
        db.upsert(record(999, 1.0)).unwrap();
        prop_assert_eq!(db.len(), expect.records.len() + 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Same, but with the kill landing after bit-rot already damaged a
    /// committed line: repair quarantines exactly the rotten line, keeps
    /// everything else, and a second fsck finds zero corrupt survivors.
    #[test]
    fn repair_after_rot_plus_torn_tail_leaves_no_corrupt_survivors(
        flip_line in 0usize..3,
        cut in 1usize..60,
        case in 0u64..10_000,
    ) {
        let root = tmp(&format!("rot-{case}"));
        let recs: Vec<DbRecord> =
            (0..4).map(|i| record(8 << i, 10.0 * (i + 1) as f64)).collect();
        {
            let mut db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
            for r in &recs {
                db.upsert(r.clone()).unwrap();
            }
        }
        let seg = root.join("segments").join("seg-1.jsonl");
        let mut data = std::fs::read(&seg).unwrap();
        // Rot one byte inside the chosen committed line...
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(data.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i + 1))
            .collect();
        let rot_at = line_starts[flip_line] + 12;
        data[rot_at] ^= 0x01;
        // ...then tear the tail.
        let cut = cut.min(data.len() - line_starts[3] - 1);
        data.truncate(data.len() - cut);
        std::fs::write(&seg, &data).unwrap();

        let report = TuningDb::fsck(&root, true, &LockOptions::try_once()).unwrap();
        prop_assert_eq!(report.quarantined, 1);
        prop_assert!(report.healthy());
        let clean = TuningDb::fsck(&root, false, &LockOptions::try_once()).unwrap();
        prop_assert_eq!(clean.corrupt_lines, 0, "zero corrupt survivors after repair");
        prop_assert!(clean.healthy());

        // The three undamaged committed lines survive exactly.
        let db = TuningDb::open(&root, &LockOptions::try_once()).unwrap();
        let surviving = recs
            .iter()
            .take(3) // the 4th line was torn (cut >= 1 guarantees it)
            .enumerate()
            .filter(|(i, _)| *i != flip_line)
            .count();
        prop_assert_eq!(db.len(), surviving);
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Child-process hook for [`two_processes_contend_loser_backs_off`]: when
/// the env var is set, this "test" becomes a lock holder that exits on its
/// own after a bounded hold. Ignored in normal runs.
#[test]
#[ignore = "helper: spawned by two_processes_contend_loser_backs_off"]
fn helper_hold_lock() {
    let Ok(path) = std::env::var("AALTUNE_TEST_HOLD_LOCK") else { return };
    let lock = DbLock::acquire(PathBuf::from(&path).as_path(), &LockOptions::try_once())
        .expect("child acquires");
    // Signal readiness, then hold until the parent removes the signal file
    // (or a 10 s deadline, so an orphaned child never wedges CI).
    let ready = PathBuf::from(format!("{path}.ready"));
    std::fs::write(&ready, b"held").unwrap();
    for _ in 0..100 {
        if !ready.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    drop(lock);
}

/// A real second process holds the lock: the loser must back off with a
/// clean `Held` error naming the live holder pid — not panic, not steal —
/// and then win promptly once the holder exits.
#[test]
fn two_processes_contend_loser_backs_off() {
    let dir = tmp("two-proc");
    std::fs::create_dir_all(&dir).unwrap();
    let lock_path = dir.join("lock");
    let ready = dir.join("lock.ready");

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["--ignored", "--exact", "helper_hold_lock", "--nocapture"])
        .env("AALTUNE_TEST_HOLD_LOCK", &lock_path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn lock-holder child");
    for _ in 0..200 {
        if ready.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(ready.exists(), "child never signalled lock acquisition");

    let opts = LockOptions { timeout: Duration::from_millis(300), ..LockOptions::default() };
    match DbLock::acquire(&lock_path, &opts) {
        Err(LockError::Held { pid, .. }) => {
            assert_eq!(pid, child.id(), "loser must name the live holder");
        }
        other => panic!("expected clean Held backoff, got {other:?}"),
    }

    // Release: the child exits when the ready file disappears.
    std::fs::remove_file(&ready).unwrap();
    let status = child.wait().unwrap();
    assert!(status.success());
    let won = DbLock::acquire(&lock_path, &LockOptions::default()).unwrap();
    assert!(!won.took_over_stale, "the child released cleanly; nothing was stale");
    let _ = std::fs::remove_dir_all(&dir);
}
